//! The composed testbed runtime: a topology kernel over the deterministic
//! event queue.
//!
//! One [`run_once`] call = one paper "run" of the trivial 1×1 topology;
//! [`run_topology`] executes an arbitrary [`TopologySpec`] — N client
//! nodes with heterogeneous hardware configurations, per-pair links, and
//! a shared server tier. The kernel wires each node's generator
//! ([`tpv_loadgen::ClientSide`]) and link ([`tpv_net::Link`]) to the
//! service ([`tpv_services::ServiceInstance`]) through one deterministic
//! event loop:
//!
//! * events are node-indexed and carry only a `u32` key into a
//!   [`tpv_sim::HotColdSlab`] of in-flight request records — per-request
//!   state lives in the arena, not in every event variant, and the
//!   fields every event touches (routing indices, latency stamp) sit in
//!   a dense hot array apart from the cold descriptor/stage bytes;
//! * each run draws fresh [`tpv_hw::RunEnvironment`]s for every machine —
//!   the paper's "in between runs we reset the environment" — so per-run
//!   samples are iid by construction;
//! * per-node randomness is **content-addressed** (`node_stream_keys` in
//!   [`crate::topology`]): permuting the fleet declaration cannot change
//!   any node's results;
//! * metric collection is pluggable through [`Collector`] — the
//!   aggregate [`RunResult`] is always produced, per-node breakdowns and
//!   fidelity traces hook in without touching the hot loop;
//! * runs can be **time-varying**: a node's
//!   [`NodeDynamics`] schedules deterministic phase boundaries at which
//!   its machine configuration, offered rate and/or link switch, and
//!   [`run_phased`] reports the per-phase latency regimes next to the
//!   whole-run fleet result;
//! * the server tier can be **sharded**
//!   ([`crate::topology::ShardSpec`]): each shard is its own backend
//!   machine and service instance, shards share no mutable state, and
//!   the kernel partitions the run into independent per-shard
//!   sub-simulations — executed serially here, or concurrently by
//!   [`run_topology_sharded`] with bit-identical results whatever the
//!   thread count or schedule;
//! * client populations compress through
//!   [`crate::topology::CohortSpec`]s: before partitioning, the kernel
//!   *lowers* each cohort into its tracked replicas plus one pooled
//!   node at the superposed arrival rate, so a million modeled clients
//!   execute as a few dozen kernel nodes ([`run_cohorted`] reports the
//!   per-cohort rollups next to the fleet view).
//!
//! The single-node topology reproduces the historical monolithic loop's
//! RNG stream layout exactly, so `run_once` is **bit-identical** to the
//! pre-topology runtime, a degenerate single-phase schedule is
//! bit-identical to the static kernel, and a one-shard tier is
//! bit-identical to the unsharded kernel (all pinned by
//! `tests/golden_runtime.rs`).
//!
//! # Example
//!
//! Two runs of the same fleet from the same seed are bit-identical, and
//! the misconfigured low-power node is visibly the straggler:
//!
//! ```
//! use tpv_core::runtime::run_topology;
//! use tpv_core::topology::{ClientNode, TopologySpec};
//! use tpv_hw::MachineConfig;
//! use tpv_loadgen::GeneratorSpec;
//! use tpv_net::LinkConfig;
//! use tpv_sim::SimDuration;
//!
//! let service = tpv_core::experiment::Benchmark::memcached().service;
//! let server = MachineConfig::server_baseline();
//! let gen = GeneratorSpec::mutilate();
//! let nodes = [
//!     ClientNode::new("hp", MachineConfig::high_performance(), gen, LinkConfig::cloudlab_lan(), 20_000.0),
//!     ClientNode::new("lp", MachineConfig::low_power(), gen, LinkConfig::cloudlab_lan(), 20_000.0),
//! ];
//! let topo = TopologySpec {
//!     service: &service,
//!     server: &server,
//!     nodes: &nodes,
//!     duration: SimDuration::from_ms(20),
//!     warmup: SimDuration::from_ms(4),
//!     shards: None,
//!     cohorts: &[],
//! };
//! let a = run_topology(&topo, 42);
//! assert_eq!(a, run_topology(&topo, 42));
//! assert!(a.nodes[1].result.p99 > a.nodes[0].result.p99);
//! ```

use tpv_hw::MachineConfig;
use tpv_loadgen::{ArrivalProcess, ClientSide, GapBuffer, GeneratorSpec, LoopMode, PointOfMeasurement};
use tpv_net::{Connection, Link, LinkConfig};
use tpv_services::request::StageCtx;
use tpv_services::{NodeConn, RequestDescriptor, ServiceConfig, ServiceInstance};
use tpv_sim::{EventQueue, HotColdSlab, LatencyHistogram, SimDuration, SimRng, SimTime};

use crate::collect::{
    Collector, MergeCollector, NodeStats, NullCollector, PerCohortCollector, PerNodeCollector,
    PhaseCollector, PhaseStats, TraceCollector,
};
use crate::topology::{
    node_stream_keys, ClientNode, CohortResult, CohortedFleetResult, FleetLayout, FleetResult, NodeDynamics,
    NodeResult, ShardResult, ShardedFleetResult, TopologyError, TopologySpec,
};

/// Everything needed to execute one run.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec<'a> {
    /// The benchmark service and its interference profile.
    pub service: &'a ServiceConfig,
    /// Server machine configuration.
    pub server: &'a MachineConfig,
    /// Client machine configuration — the paper's variable under study.
    pub client: &'a MachineConfig,
    /// Workload generator deployment.
    pub generator: &'a GeneratorSpec,
    /// Network between client and server machines.
    pub link: &'a LinkConfig,
    /// Offered load in queries per second.
    pub qps: f64,
    /// Measured run length (the paper uses 2-minute runs; benches scale
    /// this down — see EXPERIMENTS.md).
    pub duration: SimDuration,
    /// Leading portion of the run excluded from measurement.
    pub warmup: SimDuration,
}

/// The measurements of one run — one iid sample of each metric (§III).
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Mean end-to-end latency over recorded requests.
    pub avg: SimDuration,
    /// Median end-to-end latency.
    pub p50: SimDuration,
    /// 99th-percentile latency — the paper's headline tail metric.
    pub p99: SimDuration,
    /// Largest recorded latency.
    pub max: SimDuration,
    /// Within-run standard deviation of request latencies.
    pub std_dev: SimDuration,
    /// Recorded requests.
    pub samples: u64,
    /// Load actually achieved (responses per measured second).
    pub achieved_qps: f64,
    /// Load requested.
    pub target_qps: f64,
    /// Fraction of sends that slipped their schedule (workload-fidelity
    /// diagnostic).
    pub late_send_fraction: f64,
    /// Mean slip between scheduled and actual send times.
    pub mean_send_slip: SimDuration,
    /// Client-thread wake-ups per C-state `[C0, C1, C1E, C6]`.
    pub client_wakes: [u64; 4],
    /// Estimated client generator-thread energy over the run, in
    /// core-seconds of C0-equivalent power.
    pub client_energy_core_secs: f64,
    /// Requests stamped inside the measurement window whose responses
    /// were still in flight when the drain horizon expired, and which are
    /// therefore missing from the latency histogram. A non-zero value
    /// means the recorded tail is right-censored — a fidelity diagnostic
    /// (see [`crate::fidelity`]), not merely lost work.
    pub truncated_inflight: u64,
}

impl RunResult {
    /// Mean latency in microseconds (report convenience).
    pub fn avg_us(&self) -> f64 {
        self.avg.as_us()
    }

    /// p99 latency in microseconds (report convenience).
    pub fn p99_us(&self) -> f64 {
        self.p99.as_us()
    }

    /// Assembles a result from a latency histogram plus the client-side
    /// counters — the one place the histogram-derived metrics and the
    /// zero-send guards are defined, shared by the kernel's aggregate
    /// epilogue and [`crate::collect::PerNodeCollector`]'s per-node
    /// breakdowns so the two cannot drift apart.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_histogram(
        hist: &LatencyHistogram,
        measured: SimDuration,
        target_qps: f64,
        sends: tpv_loadgen::SendStats,
        wakes: [u64; 4],
        energy_core_secs: f64,
        truncated_inflight: u64,
    ) -> RunResult {
        RunResult {
            avg: hist.mean(),
            p50: hist.median(),
            p99: hist.percentile(99.0),
            max: hist.max(),
            std_dev: hist.std_dev(),
            samples: hist.count(),
            achieved_qps: hist.count() as f64 / measured.as_secs(),
            target_qps,
            late_send_fraction: if sends.total_sends == 0 {
                0.0
            } else {
                sends.late_sends as f64 / sends.total_sends as f64
            },
            mean_send_slip: if sends.total_sends == 0 {
                SimDuration::ZERO
            } else {
                sends.total_slip / sends.total_sends
            },
            client_wakes: wakes,
            client_energy_core_secs: energy_core_secs,
            truncated_inflight,
        }
    }
}

/// A node-indexed simulation event. Per-request payloads live in the
/// in-flight [`HotColdSlab`]; events carry only the key, so the event
/// heap stays small and cache-friendly.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A send is due on `conn` of `node`.
    SendDue { node: u16, conn: u32 },
    /// Request `req` reached the server NIC.
    ServerArrival { req: u32 },
    /// Request `req` resumes its next service stage.
    ServiceStage { req: u32 },
    /// Request `req`'s response reached its client NIC.
    ClientDelivery { req: u32 },
    /// `node` enters `phase` of its [`NodeDynamics`] schedule: its
    /// effective machine configuration, arrival rate and/or link switch.
    PhaseStart { node: u16, phase: u16 },
}

/// Hot half of an in-flight request record: the fields touched on
/// *every* event of the request's life — routing indices and the
/// latency stamp. Kept to 16 bytes so the [`HotColdSlab`]'s hot array
/// stays dense (a few cache lines per hundred in-flight requests); the
/// descriptor and stage context ride in [`ColdInFlight`], loaded only on
/// server-side stage transitions.
#[derive(Debug, Clone, Copy)]
struct HotInFlight {
    node: u16,
    conn: u32,
    stamp: SimTime,
}

/// Cold half of an in-flight request record: what the service needs to
/// admit and resume the request, untouched by the client-side send and
/// delivery paths.
#[derive(Debug, Clone, Copy)]
struct ColdInFlight {
    desc: RequestDescriptor,
    stage: u8,
    ctx: StageCtx,
}

/// A bounded trace of one run, for workload-fidelity diagnostics
/// (Lancet-style self-checks; see [`crate::fidelity`]).
#[derive(Debug, Clone, Default)]
pub struct RunTrace {
    /// `(connection, wire departure time)` of traced sends, in event
    /// order. Connections are node-local ids.
    pub wire_departures: Vec<(u32, SimTime)>,
    /// Measured latencies (µs) in completion order.
    pub latencies_us: Vec<f64>,
    /// The scheduled mean per-connection inter-arrival gap (µs).
    pub scheduled_gap_us: f64,
}

/// Live hedge leg of one node: an analytic replica of the hedge backend
/// plus the node's second network path and a private RNG stream (fork 7
/// of the node master — untouched by every other stream, so enabling a
/// hedge cannot perturb any non-hedged draw). The replica serves overdue
/// duplicates to completion via
/// [`ServiceInstance::handle_to_completion`], which models the backend's
/// service-time distribution but not its live queue depth — the
/// documented low-rate hedge approximation. No kernel events are
/// dispatched for a hedge leg, so event counts are hedge-invariant.
struct HedgeState {
    deadline: SimDuration,
    service: ServiceInstance,
    link: Link,
    rng: SimRng,
}

/// Live per-node state of the kernel: the node's generator, link,
/// connections, its content-addressed RNG streams and (for dynamic
/// nodes) its phase plan.
struct NodeState<'a> {
    client: ClientSide,
    link: Link,
    conns: Vec<Connection>,
    arrivals: ArrivalProcess,
    arrival_rng: SimRng,
    /// Batched pre-draws on the arrival stream. Safe because after the
    /// start-stagger draws, `arrival_rng` feeds gaps and nothing else —
    /// drawing ahead on it in the same order is bit-identical.
    gap_buf: GapBuffer,
    client_rng: SimRng,
    net_rng: SimRng,
    /// `None` in the single-node legacy stream layout: descriptors then
    /// draw from the shared service stream, exactly as the monolithic
    /// loop did.
    desc_rng: Option<SimRng>,
    /// Stream for per-phase environment redraws. Forked for every node
    /// but never consumed on static nodes, so the phase layer costs the
    /// static path no randomness.
    phase_rng: SimRng,
    /// The node's phase plan, if any.
    dynamics: Option<&'a NodeDynamics>,
    /// Pre-generated arrival process per phase (empty for nodes without
    /// a rate plan): a boundary switch is a copy, not a rebuild, so the
    /// steady-state loop and its phase transitions allocate nothing.
    phase_arrivals: Vec<ArrivalProcess>,
    /// Content identity for admission keying (0 = single-node layout).
    node_key: u64,
    pom: PointOfMeasurement,
    loop_mode: LoopMode,
    think_time: SimDuration,
    /// Base offered load (phase multipliers scale it).
    qps: f64,
    /// Effective offered load over the measurement window (equals `qps`
    /// for static nodes).
    target_qps: f64,
    /// In-window requests sent but not yet delivered.
    inflight_measured: u64,
    /// The node's hedge leg, when a [`crate::control::HedgePlan`] covers
    /// it (fleet layout only; the legacy single-node layout never
    /// hedges).
    hedge: Option<HedgeState>,
}

impl<'a> NodeState<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        node: &'a ClientNode,
        node_key: u64,
        client_env: &tpv_hw::RunEnvironment,
        arrival_rng: SimRng,
        client_rng: SimRng,
        mut net_rng: SimRng,
        desc_rng: Option<SimRng>,
        phase_rng: SimRng,
        window: (SimTime, SimTime),
    ) -> Self {
        let dynamics = node.dynamics.as_ref();
        let n_conns = node.generator.connections.max(1) as usize;
        // Phase 0 resolves every time-varying aspect; static nodes take
        // the exact legacy expressions (no float perturbation). Rate
        // plans pre-generate one arrival process per phase up front, so
        // a boundary switch in the hot loop is a plain copy.
        let (per_conn_gap, phase_arrivals) = match dynamics.and_then(|d| d.rate.as_ref()) {
            Some(rate) => {
                let per_phase: Vec<ArrivalProcess> = (0..rate.schedule().phase_count())
                    .map(|p| {
                        let gap =
                            SimDuration::from_secs_f64(n_conns as f64 / (node.qps * rate.multiplier(p)));
                        ArrivalProcess::new(node.generator.arrival, gap)
                    })
                    .collect();
                (per_phase[0].mean_gap(), per_phase)
            }
            None => (SimDuration::from_secs_f64(n_conns as f64 / node.qps), Vec::new()),
        };
        let link0 = dynamics.and_then(|d| d.links.as_ref()).map_or(&node.link, |links| &links[0]);
        let link = Link::new(link0, &mut net_rng);
        let target_qps = match dynamics {
            Some(dy) => node.qps * dy.mean_rate_multiplier(window.0, window.1),
            None => node.qps,
        };
        NodeState {
            client: ClientSide::new(node.generator, node.initial_machine(), client_env),
            link,
            conns: (0..n_conns).map(Connection::new).collect(),
            arrivals: ArrivalProcess::new(node.generator.arrival, per_conn_gap),
            arrival_rng,
            gap_buf: GapBuffer::new(),
            client_rng,
            net_rng,
            desc_rng,
            phase_rng,
            dynamics,
            phase_arrivals,
            node_key,
            pom: node.generator.pom,
            loop_mode: node.generator.loop_mode,
            think_time: node.generator.think_time,
            qps: node.qps,
            target_qps,
            inflight_measured: 0,
            hedge: None,
        }
    }

    /// Applies the switches of entering `phase` (machine, rate, link).
    /// Only aspects whose value actually changes at this boundary act,
    /// so repeated values neither redraw environments nor rebuild links.
    fn enter_phase(&mut self, phase: usize) {
        let dy = self.dynamics.expect("phase event on a static node");
        if let Some(plan) = &dy.machine {
            if plan.config(phase) != plan.config(phase - 1) {
                let cfg = plan.config(phase);
                // The new regime draws a fresh environment from its own
                // variability profile — per-node stream, so fleets stay
                // permutation invariant.
                let env = cfg.draw_environment(&mut self.phase_rng);
                self.client.reconfigure(cfg, &env);
            }
        }
        if let Some(rate) = &dy.rate {
            if rate.multiplier(phase) != rate.multiplier(phase - 1) {
                self.arrivals = self.phase_arrivals[phase];
                // Pre-drawn gaps take their meaning from the process in
                // effect at consumption: re-transform the buffered tail.
                self.gap_buf.reconfigure(&self.arrivals);
            }
        }
        if let Some(links) = &dy.links {
            if links[phase] != links[phase - 1] {
                self.link = Link::new(&links[phase], &mut self.net_rng);
            }
        }
    }
}

/// Executes one run of the testbed with the given seed.
///
/// Deterministic: the same `(spec, seed)` produces bit-identical results.
/// Internally this is the trivial 1×1 topology through the kernel.
///
/// # Panics
///
/// Panics if `qps` is not positive or `warmup >= duration`.
pub fn run_once(spec: &RunSpec<'_>, seed: u64) -> RunResult {
    assert!(spec.qps > 0.0, "offered load must be positive, got {}", spec.qps);
    let nodes = [spec.client_node()];
    let topo = TopologySpec {
        shards: None,
        service: spec.service,
        server: spec.server,
        nodes: &nodes,
        duration: spec.duration,
        warmup: spec.warmup,
        cohorts: &[],
    };
    run_collected(&topo, seed, &mut NullCollector)
}

/// Like [`run_once`], additionally collecting up to `max_trace` traced
/// sends and latencies for fidelity diagnostics.
///
/// # Panics
///
/// Panics if `qps` is not positive or `warmup >= duration`.
pub fn run_traced(spec: &RunSpec<'_>, seed: u64, max_trace: usize) -> (RunResult, RunTrace) {
    assert!(spec.qps > 0.0, "offered load must be positive, got {}", spec.qps);
    assert!(spec.warmup < spec.duration, "warmup must be shorter than the run");
    let nodes = [spec.client_node()];
    let topo = TopologySpec {
        shards: None,
        service: spec.service,
        server: spec.server,
        nodes: &nodes,
        duration: spec.duration,
        warmup: spec.warmup,
        cohorts: &[],
    };
    let n_conns = spec.generator.connections.max(1) as usize;
    let per_conn_gap = SimDuration::from_secs_f64(n_conns as f64 / spec.qps);
    // Expected sends bound the trace pre-allocation alongside max_trace.
    let expected_sends = (spec.qps * spec.duration.as_secs() * 1.25) as usize + 64;
    let mut collector =
        TraceCollector::new(max_trace, SimTime::ZERO + spec.warmup, per_conn_gap, expected_sends);
    let result = run_collected(&topo, seed, &mut collector);
    (result, collector.into_trace())
}

/// Executes one run of a topology, returning the aggregate plus per-node
/// breakdowns (one per *lowered* node for cohorted topologies, labelled
/// per [`crate::topology::CohortedFleetResult::fleet`]'s convention).
///
/// Deterministic: the same `(spec, seed)` produces bit-identical results,
/// and per-node results are invariant under permutation of the node
/// declaration order (content-addressed per-node seeds).
///
/// # Panics
///
/// Panics if [`TopologySpec::validate`] rejects the topology.
pub fn run_topology(topo: &TopologySpec<'_>, seed: u64) -> FleetResult {
    let layout = topo.layout();
    let mut collector = PerNodeCollector::new(layout.len());
    let aggregate = run_collected(topo, seed, &mut collector);
    FleetResult { aggregate, nodes: node_results(&layout, collector) }
}

/// Zips a lowered layout with a filled per-node collector into labelled
/// [`NodeResult`]s — shared by every entry point that reports per-node
/// breakdowns, so lowered-node labelling cannot drift between them.
fn node_results(layout: &FleetLayout<'_>, collector: PerNodeCollector) -> Vec<NodeResult> {
    collector
        .into_results()
        .into_iter()
        .enumerate()
        .map(|(i, result)| NodeResult { label: layout.display_label(i), result })
        .collect()
}

/// The measurements of one phased fleet run: the whole-run fleet view,
/// the per-shard breakdown and the pooled per-phase latency regimes.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasedFleetResult {
    /// Whole-run aggregate and per-node breakdowns (identical in shape
    /// to [`run_topology`]'s result).
    pub fleet: FleetResult,
    /// Whole-run per-shard breakdown in shard declaration order — one
    /// entry covering the whole fleet for a single-tier topology
    /// (identical in shape to [`run_topology_sharded`]'s breakdown).
    pub shards: Vec<ShardResult>,
    /// Pooled per-phase statistics over the topology's merged schedule
    /// (one all-covering phase for a fully static topology), restricted
    /// to phases overlapping the measurement window.
    pub phases: Vec<PhaseStats>,
}

impl PhasedFleetResult {
    /// The per-phase stats for schedule phase `phase`, if it overlaps
    /// the measurement window.
    pub fn phase(&self, phase: usize) -> Option<&PhaseStats> {
        self.phases.iter().find(|p| p.phase == phase)
    }
}

/// Like [`run_topology`], additionally bucketing pooled latencies by the
/// phase their request was stamped in (over the topology's
/// [`TopologySpec::merged_schedule`]). This is the entry point for
/// time-varying studies: a phase boundary that switches machine state or
/// load is visible as a regime change between consecutive
/// [`PhaseStats`].
///
/// Multi-shard (and cohorted) topologies are supported: the run executes
/// through the same partitioned kernel as [`run_topology_sharded`], and
/// per-phase histogram state merges across shards in canonical
/// `(shard_key, shard_index)` order — see [`PhaseCollector`] — so the
/// per-phase stats share the aggregate's shard-enumeration-invariance
/// contract. This serial entry point equals
/// [`run_phased_sharded`] at any worker count bit for bit.
///
/// The whole-run `fleet` half is produced by the same kernel pass, so it
/// matches [`run_topology`]'s (and [`run_topology_sharded`]'s) output
/// bit for bit.
///
/// # Errors
///
/// Returns the [`TopologyError`] from [`TopologySpec::validate`] on a
/// structurally invalid spec.
///
/// # Panics
///
/// Panics on malformed hand-assembled plans, as
/// [`TopologySpec::validate`] documents.
pub fn run_phased(topo: &TopologySpec<'_>, seed: u64) -> Result<PhasedFleetResult, TopologyError> {
    run_phased_sharded(topo, seed, 1)
}

/// [`run_phased`] on up to `workers` threads: phased multi-shard
/// topologies ride the same work-stealing shard pool as
/// [`run_topology_sharded`]. Same determinism contract — results are
/// bit-identical whatever `workers`, the steal schedule or the shard
/// enumeration order.
///
/// # Errors
///
/// Returns the [`TopologyError`] from [`TopologySpec::validate`] on a
/// structurally invalid spec.
///
/// # Panics
///
/// Panics on malformed hand-assembled plans, as
/// [`TopologySpec::validate`] documents.
pub fn run_phased_sharded(
    topo: &TopologySpec<'_>,
    seed: u64,
    workers: usize,
) -> Result<PhasedFleetResult, TopologyError> {
    run_phased_sharded_with(topo, seed, workers, crate::pin::PinPolicy::Off)
}

/// [`run_phased_sharded`] with an explicit worker
/// [`PinPolicy`](crate::pin::PinPolicy) — pinning remains a throughput
/// knob, never a results knob.
///
/// # Errors
///
/// Returns the [`TopologyError`] from [`TopologySpec::validate`] on a
/// structurally invalid spec.
///
/// # Panics
///
/// Panics on malformed hand-assembled plans, as
/// [`TopologySpec::validate`] documents.
pub fn run_phased_sharded_with(
    topo: &TopologySpec<'_>,
    seed: u64,
    workers: usize,
    pin: crate::pin::PinPolicy,
) -> Result<PhasedFleetResult, TopologyError> {
    topo.validate()?;
    let layout = topo.layout();
    let n = layout.len();
    let schedule = topo.merged_schedule();
    let window = (SimTime::ZERO + topo.warmup, SimTime::ZERO + topo.duration);
    let (aggregate, shards, (per_node, per_phase)) =
        run_sharded_collected_with(topo, seed, workers, pin, |shard, shard_key| {
            (
                PerNodeCollector::new(n),
                PhaseCollector::for_partition(schedule.clone(), window.0, window.1, shard_key, shard),
            )
        });
    Ok(PhasedFleetResult {
        fleet: FleetResult { aggregate, nodes: node_results(&layout, per_node) },
        shards,
        phases: per_phase.into_stats(),
    })
}

/// Validates a topology before execution — shared by every kernel entry
/// point, so hand-assembled specs fail loudly whichever door they come
/// in through. The checks live in [`TopologySpec::validate`] (where
/// callers that prefer a reportable error get them as a
/// [`TopologyError`]); this bridge panics with the error's message,
/// preserving the historical panic contract.
fn validate_topology(topo: &TopologySpec<'_>) {
    if let Err(e) = topo.validate() {
        panic!("{e}");
    }
}

/// One shard's slice of a run: the backend machine, the member nodes
/// (global declaration index, node, content-addressed stream key) and
/// the RNG the shard's service/server-environment streams fork from.
/// The single-tier topology is exactly one partition covering the whole
/// fleet.
struct PartitionPlan<'a> {
    /// Shard index in declaration order (0 for the single tier).
    shard: usize,
    /// Canonical content key: float aggregates merge across partitions
    /// in `(key, shard)` order, so shard *enumeration* order cannot leak
    /// into the aggregate through non-associative f64 addition. 0 for
    /// the single tier.
    key: u64,
    server: &'a MachineConfig,
    members: Vec<(usize, &'a ClientNode, u64)>,
    /// Service and server-environment streams fork from here (the global
    /// master for the single tier, a content-keyed fork per shard).
    master: SimRng,
    /// Replay the historical single-node stream layout (unsharded 1×1).
    legacy_single: bool,
}

/// Splits a topology into its independent per-shard sub-simulations,
/// over the **lowered** fleet `nodes` (see
/// [`TopologySpec::lowered_node_count`]; identical to `topo.nodes` when
/// the topology has no cohorts).
///
/// Shards share no mutable state — each partition gets its own service
/// instance, event queue, slab and RNG streams — so partitions can run
/// in any order, or concurrently, with bit-identical results. Per-node
/// streams fork from the **global** master under node content keys:
/// moving a node between shards (or resharding the tier) never changes
/// the node's own arrival schedule or environment draws — and a lowered
/// cohort node's key is its content key too, so cohort declaration
/// order cannot change results either.
fn build_partitions<'a>(
    topo: &TopologySpec<'a>,
    nodes: &'a [ClientNode],
    master: &SimRng,
) -> Vec<PartitionPlan<'a>> {
    if topo.shard_count() == 1 {
        // Degenerate tier: the unsharded kernel, with the single shard's
        // machine as the server when a spec is present.
        let server = topo.shards.map_or(topo.server, |s| &s.machines[0]);
        let legacy_single = nodes.len() == 1;
        let members: Vec<(usize, &'a ClientNode, u64)> = if legacy_single {
            vec![(0, &nodes[0], 0)]
        } else {
            nodes
                .iter()
                .enumerate()
                .zip(node_stream_keys(nodes))
                .map(|((i, node), key)| (i, node, key))
                .collect()
        };
        return vec![PartitionPlan {
            shard: 0,
            key: 0,
            server,
            members,
            master: master.clone(),
            legacy_single,
        }];
    }
    let shards = topo.shards.expect("multi-shard topology");
    let node_keys = node_stream_keys(nodes);
    let shard_keys = crate::topology::shard_stream_keys(&shards.machines);
    let assignment = shards.assign(nodes.len());
    let mut plans: Vec<PartitionPlan<'a>> = shards
        .machines
        .iter()
        .zip(&shard_keys)
        .enumerate()
        .map(|(shard, (server, &key))| PartitionPlan {
            shard,
            key,
            server,
            members: Vec::new(),
            master: master.fork(key),
            legacy_single: false,
        })
        .collect();
    for ((i, node), (&shard, &key)) in nodes.iter().enumerate().zip(assignment.iter().zip(&node_keys)) {
        plans[shard].members.push((i, node, key));
    }
    plans
}

/// Everything one partition's sub-simulation produced: the pooled
/// latency histogram plus the client-side counters of its member nodes.
/// Merging outcomes (in canonical key order) reproduces the single-loop
/// epilogue exactly.
struct PartitionOutcome {
    key: u64,
    hist: LatencyHistogram,
    late_sends: u64,
    total_sends: u64,
    total_slip: SimDuration,
    wakes: [u64; 4],
    energies: Vec<f64>,
    truncated: u64,
    /// Order-independent sum of the member nodes' effective loads.
    target_qps: f64,
}

impl PartitionOutcome {
    fn empty(key: u64) -> Self {
        PartitionOutcome {
            key,
            hist: LatencyHistogram::new(),
            late_sends: 0,
            total_sends: 0,
            total_slip: SimDuration::ZERO,
            wakes: [0; 4],
            energies: Vec::new(),
            truncated: 0,
            target_qps: 0.0,
        }
    }

    /// This partition's pooled measurements as a [`RunResult`] — the
    /// per-shard breakdown of a sharded run.
    fn shard_run_result(&self, measured: SimDuration) -> RunResult {
        RunResult::from_histogram(
            &self.hist,
            measured,
            self.target_qps,
            tpv_loadgen::SendStats {
                late_sends: self.late_sends,
                total_sends: self.total_sends,
                total_slip: self.total_slip,
            },
            self.wakes,
            crate::topology::stable_sum(self.energies.clone()),
            self.truncated,
        )
    }
}

/// Merges partition outcomes into the whole-run aggregate. Integer
/// counters sum exactly; float aggregates (histogram mean/variance,
/// energy) merge in canonical `(key, shard)` order — respectively via
/// `stable_sum` — so the result is independent of shard enumeration and
/// execution order. A single partition merges into an empty histogram,
/// which is bit-exact, keeping the unsharded path byte-identical to the
/// historical single-loop epilogue.
fn finish_run(topo: &TopologySpec<'_>, outcomes: &[PartitionOutcome]) -> RunResult {
    let measured_dur = topo.duration - topo.warmup;
    let mut order: Vec<usize> = (0..outcomes.len()).collect();
    order.sort_by_key(|&i| (outcomes[i].key, i));
    let mut hist = LatencyHistogram::new();
    let mut wakes = [0u64; 4];
    let mut energies: Vec<f64> = Vec::new();
    let mut late_sends = 0u64;
    let mut total_sends = 0u64;
    let mut total_slip = SimDuration::ZERO;
    let mut truncated = 0u64;
    for &i in &order {
        let o = &outcomes[i];
        hist.merge(&o.hist);
        for (acc, w) in wakes.iter_mut().zip(o.wakes) {
            *acc += w;
        }
        energies.extend_from_slice(&o.energies);
        late_sends += o.late_sends;
        total_sends += o.total_sends;
        total_slip += o.total_slip;
        truncated += o.truncated;
    }
    RunResult::from_histogram(
        &hist,
        measured_dur,
        // Time-averaged over any phased rates; bit-identical to
        // `total_qps` for static topologies.
        topo.offered_qps(),
        tpv_loadgen::SendStats { late_sends, total_sends, total_slip },
        wakes,
        // Order-independent: permuting the fleet declaration must not
        // perturb the aggregate through float non-associativity.
        crate::topology::stable_sum(energies),
        truncated,
    )
}

/// The topology kernel: executes one run, feeding observations to
/// `collector`. This is the single hot loop behind [`run_once`],
/// [`run_traced`], [`run_topology`] and (per shard) the parallel
/// [`run_topology_sharded`]. Sharded topologies execute their partitions
/// serially here, feeding the one collector in shard declaration order.
///
/// # Panics
///
/// Panics if [`TopologySpec::validate`] rejects the topology (no nodes,
/// non-positive `qps`, invalid dynamics or cohorts, a bad shard spec,
/// or `warmup >= duration`).
pub fn run_collected<C: Collector>(topo: &TopologySpec<'_>, seed: u64, collector: &mut C) -> RunResult {
    validate_topology(topo);
    let layout = topo.layout();
    let master = SimRng::seed_from_u64(seed);
    let plans = build_partitions(topo, layout.nodes(), &master);
    let outcomes: Vec<PartitionOutcome> =
        plans.iter().map(|plan| run_partition(topo, plan, &master, None, collector)).collect();
    finish_run(topo, &outcomes)
}

/// Executes one partition's sub-simulation: the member nodes against the
/// partition's backend, through a private event queue, slab and service
/// instance. Collector hooks receive **global** node indices.
fn run_partition<C: Collector>(
    topo: &TopologySpec<'_>,
    part: &PartitionPlan<'_>,
    global_master: &SimRng,
    hedge_plan: Option<&crate::control::HedgePlan>,
    collector: &mut C,
) -> PartitionOutcome {
    if part.members.is_empty() {
        // A shard with no assigned nodes serves nothing; its streams are
        // never consumed, so adding shards cannot perturb loaded ones.
        return PartitionOutcome::empty(part.key);
    }
    let master = &part.master;
    let mut service_rng = master.fork(3);
    let mut env_rng = master.fork(5);

    // Reset the environment: fresh per-run hardware state (§III iid).
    //
    // The single-node layout replays the historical stream order exactly
    // (client env then server env off one stream, descriptors off the
    // service stream), keeping `run_once` bit-identical to the
    // pre-topology runtime. Fleets give every node its own streams forked
    // under its content key — from the *global* master, so a node's
    // randomness survives resharding unchanged.
    let window = (SimTime::ZERO + topo.warmup, SimTime::ZERO + topo.duration);
    let mut states: Vec<NodeState<'_>> = Vec::with_capacity(part.members.len());
    let server_env;
    if part.legacy_single {
        let node = part.members[0].1;
        let client_env = node.initial_machine().draw_environment(&mut env_rng);
        server_env = part.server.draw_environment(&mut env_rng);
        states.push(NodeState::new(
            node,
            0,
            &client_env,
            master.fork(1),
            master.fork(2),
            master.fork(4),
            None,
            master.fork(6),
            window,
        ));
    } else {
        server_env = part.server.draw_environment(&mut env_rng);
        for &(_, node, key) in &part.members {
            let node_master = global_master.fork(key);
            let mut node_env_rng = node_master.fork(5);
            let client_env = node.initial_machine().draw_environment(&mut node_env_rng);
            let mut st = NodeState::new(
                node,
                key,
                &client_env,
                node_master.fork(1),
                node_master.fork(2),
                node_master.fork(4),
                Some(node_master.fork(3)),
                node_master.fork(6),
                window,
            );
            // The hedge leg lives on fork 7 of the node master — never
            // consumed by any other path, so a non-hedged run is
            // byte-identical whether or not hedging exists in the build.
            st.hedge = hedge_plan.and_then(|plan| plan.get(&node.label)).map(|spec| {
                let mut rng = node_master.fork(7);
                let env = spec.backend.draw_environment(&mut rng);
                let service =
                    ServiceInstance::new(topo.service, &spec.backend, &env, topo.duration, &mut rng);
                let link = Link::new(&node.link, &mut rng);
                HedgeState { deadline: spec.deadline, service, link, rng }
            });
            states.push(st);
        }
    }
    let mut service =
        ServiceInstance::new(topo.service, part.server, &server_env, topo.duration, &mut service_rng);

    // Local (partition) node index → global declaration index, for the
    // collector hooks.
    let global: Vec<usize> = part.members.iter().map(|&(i, _, _)| i).collect();

    let total_conns: usize = states.iter().map(|s| s.conns.len()).sum();
    // The partition's aggregate send rate bounds the event spacing from
    // above (every request adds in-flight events on top), which is the
    // calendar queue's bucket-width hint.
    let total_qps: f64 = states.iter().map(|s| s.qps).sum();
    let mut queue: EventQueue<Event> =
        EventQueue::with_spacing(4 * total_conns, SimDuration::from_secs_f64(1.0 / total_qps));
    let mut requests: HotColdSlab<HotInFlight, ColdInFlight> = HotColdSlab::with_capacity(2 * total_conns);

    // Stagger every connection's start phase uniformly across one of its
    // node's mean gaps.
    for (node, st) in states.iter_mut().enumerate() {
        for conn in 0..st.conns.len() {
            let phase = st.arrivals.mean_gap().scale(st.arrival_rng.next_f64());
            queue.schedule(SimTime::ZERO + phase, Event::SendDue { node: node as u16, conn: conn as u32 });
        }
    }

    let window_start = SimTime::ZERO + topo.warmup;
    let window_end = SimTime::ZERO + topo.duration;
    // Runs drain in-flight requests after the send window closes, with a
    // hard horizon to bound pathological backlogs.
    let horizon = window_end + topo.duration + SimDuration::from_secs(5);

    // Phase boundaries of dynamic nodes become first-class events, so a
    // regime switch interleaves deterministically with the request flow
    // (boundaries during the drain still apply: in-flight responses land
    // on the machine state of the moment).
    for (node, st) in states.iter().enumerate() {
        if let Some(dy) = st.dynamics {
            for (k, &boundary) in dy.schedule.boundaries().iter().enumerate() {
                if boundary <= horizon {
                    queue.schedule(boundary, Event::PhaseStart { node: node as u16, phase: (k + 1) as u16 });
                }
            }
        }
    }

    let mut hist = LatencyHistogram::new();

    // Dispatch in tie-run batches: `pop_batch` drains every event sharing
    // the earliest timestamp in one call, amortizing the queue's per-pop
    // bookkeeping. All batch members report the same clamped `now`, so
    // the drain-horizon check moves out of the per-event path; events a
    // handler schedules at the batch's own timestamp land in a later
    // batch, exactly where FIFO tie order already places them — the
    // dispatch sequence is the one-at-a-time pop sequence unchanged.
    // Dispatch in tie-run batches: `pop_batch` drains every event sharing
    // the earliest timestamp in one call, amortizing the queue's per-pop
    // bookkeeping. All batch members report the same clamped `now`, so
    // the drain-horizon check moves out of the per-event path; events a
    // handler schedules at the batch's own timestamp land in a later
    // batch, exactly where FIFO tie order already places them — the
    // dispatch sequence is the one-at-a-time pop sequence unchanged.
    let mut batch: Vec<(SimTime, Event)> = Vec::with_capacity(64);
    while queue.pop_batch(&mut batch) > 0 {
        if batch[0].0 > horizon {
            break;
        }
        for &(now, event) in &batch {
            collector.on_event(now);
            match event {
                Event::SendDue { node, conn } => {
                    let st = &mut states[node as usize];
                    let desc = match st.desc_rng.as_mut() {
                        Some(rng) => service.next_descriptor(rng),
                        None => service.next_descriptor(&mut service_rng),
                    };
                    let plan = st.client.plan_send(conn as usize, now, &mut st.client_rng);
                    let raw = plan.wire + st.link.one_way(&mut st.net_rng);
                    let arrival = st.conns[conn as usize].deliver_to_server(raw);
                    collector.on_send(global[node as usize], conn, now, plan.wire);
                    if plan.stamp >= window_start && plan.stamp < window_end {
                        st.inflight_measured += 1;
                    }
                    let req = requests.insert(
                        HotInFlight { node, conn, stamp: plan.stamp },
                        ColdInFlight { desc, stage: 0, ctx: StageCtx::default() },
                    );
                    queue.schedule(arrival, Event::ServerArrival { req });
                    if st.loop_mode == LoopMode::Open {
                        let next = now + st.gap_buf.next_gap(&st.arrivals, &mut st.arrival_rng);
                        if next < window_end {
                            queue.schedule(next, Event::SendDue { node, conn });
                        }
                    }
                }
                Event::ServerArrival { req } => {
                    let r = *requests.hot(req);
                    let key = NodeConn { node_key: states[r.node as usize].node_key, conn: r.conn };
                    let outcome =
                        service.admit(key.affinity_key(), &requests.cold(req).desc, now, &mut service_rng);
                    match outcome {
                        tpv_services::request::StageOutcome::Done(done) => {
                            let st = &mut states[r.node as usize];
                            let raw = done.response_wire + st.link.one_way(&mut st.net_rng);
                            let nic = st.link.coalesce(st.conns[r.conn as usize].deliver_to_client(raw));
                            queue.schedule(nic, Event::ClientDelivery { req });
                        }
                        tpv_services::request::StageOutcome::Continue { at, stage, ctx } => {
                            let slot = requests.cold_mut(req);
                            slot.stage = stage;
                            slot.ctx = ctx;
                            queue.schedule(at, Event::ServiceStage { req });
                        }
                    }
                }
                Event::ServiceStage { req } => {
                    let r = *requests.hot(req);
                    let key = NodeConn { node_key: states[r.node as usize].node_key, conn: r.conn };
                    let c = requests.cold(req);
                    let outcome =
                        service.resume(key.affinity_key(), &c.desc, c.stage, c.ctx, now, &mut service_rng);
                    match outcome {
                        tpv_services::request::StageOutcome::Done(done) => {
                            let st = &mut states[r.node as usize];
                            let raw = done.response_wire + st.link.one_way(&mut st.net_rng);
                            let nic = st.link.coalesce(st.conns[r.conn as usize].deliver_to_client(raw));
                            queue.schedule(nic, Event::ClientDelivery { req });
                        }
                        tpv_services::request::StageOutcome::Continue { at, stage, ctx } => {
                            let slot = requests.cold_mut(req);
                            slot.stage = stage;
                            slot.ctx = ctx;
                            queue.schedule(at, Event::ServiceStage { req });
                        }
                    }
                }
                Event::ClientDelivery { req } => {
                    let r = *requests.hot(req);
                    let in_window = r.stamp >= window_start && r.stamp < window_end;
                    // Copy the descriptor out before the slot dies; only
                    // deliveries that can actually hedge pay for it.
                    let hedged_desc = if in_window && states[r.node as usize].hedge.is_some() {
                        Some(requests.cold(req).desc)
                    } else {
                        None
                    };
                    requests.remove(req);
                    let st = &mut states[r.node as usize];
                    let recv = st.client.receive(r.conn as usize, now, &mut st.client_rng);
                    let mut measured = recv.stamp(st.pom).since(r.stamp);
                    if in_window {
                        if let Some(desc) = hedged_desc {
                            let node_key = st.node_key;
                            let h = st.hedge.as_mut().expect("hedged_desc implies hedge state");
                            if measured > h.deadline {
                                // The duplicate leaves once the primary
                                // overruns the deadline; first response
                                // wins. Hedge draws fire only for
                                // recorded (in-window) requests, so the
                                // leg's stream consumption is a pure
                                // function of the measured request
                                // sequence.
                                let fire = r.stamp + h.deadline;
                                let arrival = fire + h.link.one_way(&mut h.rng);
                                let key = NodeConn { node_key, conn: r.conn };
                                let done = h.service.handle_to_completion(
                                    key.affinity_key(),
                                    &desc,
                                    arrival,
                                    &mut h.rng,
                                );
                                let alt = (done.response_wire + h.link.one_way(&mut h.rng)).since(r.stamp);
                                collector.on_hedge(global[r.node as usize]);
                                if alt < measured {
                                    measured = alt;
                                }
                            }
                        }
                        st.inflight_measured -= 1;
                        hist.record(measured);
                        collector.on_latency(global[r.node as usize], r.stamp, measured);
                    }
                    if st.loop_mode == LoopMode::Closed {
                        let next = recv.app + st.think_time;
                        if next < window_end {
                            queue.schedule(next, Event::SendDue { node: r.node, conn: r.conn });
                        }
                    }
                }
                Event::PhaseStart { node, phase } => {
                    states[node as usize].enter_phase(phase as usize);
                }
            }
        }
    }

    // Whatever is left in flight was cut off by the drain horizon and is
    // missing from the histogram (right-censored tail).
    let measured_dur = topo.duration - topo.warmup;
    let mut outcome = PartitionOutcome::empty(part.key);
    let mut targets: Vec<f64> = Vec::with_capacity(states.len());
    for (node, st) in states.iter().enumerate() {
        let sends = st.client.send_stats();
        let node_wakes = st.client.wakes_by_state();
        let node_energy = st.client.energy_core_secs(window_end);
        for (acc, w) in outcome.wakes.iter_mut().zip(node_wakes) {
            *acc += w;
        }
        outcome.energies.push(node_energy);
        outcome.late_sends += sends.late_sends;
        outcome.total_sends += sends.total_sends;
        outcome.total_slip += sends.total_slip;
        outcome.truncated += st.inflight_measured;
        targets.push(st.target_qps);
        collector.on_node_done(
            global[node],
            &NodeStats {
                wakes: node_wakes,
                energy_core_secs: node_energy,
                sends,
                truncated_inflight: st.inflight_measured,
                target_qps: st.target_qps,
                measured: measured_dur,
            },
        );
    }
    outcome.hist = hist;
    outcome.target_qps = crate::topology::stable_sum(targets);
    outcome
}

/// Like [`run_topology`] for a sharded server tier: executes the
/// topology's independent per-shard sub-simulations on up to `workers`
/// scoped threads (the same self-scheduling pattern as
/// [`crate::engine::Engine`]'s job pool) and returns the fleet view next
/// to the per-shard breakdown.
///
/// Determinism contract: results are **bit-identical** whatever
/// `workers`, the OS schedule, or the shard execution order — each shard
/// is a self-contained simulation with content-addressed RNG streams,
/// and all merges happen in stable orders. `workers == 1` is the fully
/// serial execution; an unsharded topology is the degenerate single
/// partition (identical to [`run_topology`]).
///
/// # Panics
///
/// Panics on the same invalid specs as [`run_collected`].
pub fn run_topology_sharded(topo: &TopologySpec<'_>, seed: u64, workers: usize) -> ShardedFleetResult {
    run_topology_sharded_with(topo, seed, workers, crate::pin::PinPolicy::Off)
}

/// [`run_topology_sharded`] with an explicit worker
/// [`PinPolicy`](crate::pin::PinPolicy) — same determinism contract:
/// the result is bit-identical whatever the policy, the worker count or
/// the OS schedule.
///
/// # Panics
///
/// Panics on the same invalid specs as [`run_collected`].
pub fn run_topology_sharded_with(
    topo: &TopologySpec<'_>,
    seed: u64,
    workers: usize,
    pin: crate::pin::PinPolicy,
) -> ShardedFleetResult {
    let layout = topo.layout();
    let n = layout.len();
    let (aggregate, shards, collector) =
        run_sharded_collected_with(topo, seed, workers, pin, |_, _| PerNodeCollector::new(n));
    ShardedFleetResult { fleet: FleetResult { aggregate, nodes: node_results(&layout, collector) }, shards }
}

/// Executes a cohort-compressed topology (sharded or not) on up to
/// `workers` threads and returns the fleet view over the lowered nodes,
/// the per-shard breakdown and the per-cohort rollups. This is the
/// population-scale entry point: a million modeled clients compressed
/// into a few dozen cohorts execute at the cost of the lowered fleet.
///
/// Determinism contract: like [`run_topology_sharded`], results are
/// bit-identical whatever `workers` or the OS schedule — per-cohort
/// state merges across shards in stable shard declaration order, and
/// the per-cohort energy/target sums are order-independent
/// (`stable_sum`). Works on topologies without cohorts too (the
/// `cohorts` rollup is then empty).
///
/// # Panics
///
/// Panics on the same invalid specs as [`run_collected`].
pub fn run_cohorted(topo: &TopologySpec<'_>, seed: u64, workers: usize) -> CohortedFleetResult {
    let layout = topo.layout();
    let n = layout.len();
    let cohort_of = layout.cohort_map();
    let n_cohorts = topo.cohorts.len();
    let (aggregate, shards, (per_node, per_cohort)) = run_sharded_collected(topo, seed, workers, |_, _| {
        (PerNodeCollector::new(n), PerCohortCollector::new(cohort_of.clone(), n_cohorts))
    });
    let measured = topo.duration - topo.warmup;
    let cohorts = topo
        .cohorts
        .iter()
        .zip(per_cohort.into_results(measured))
        .map(|(spec, result)| CohortResult {
            label: spec.node.label.clone(),
            population: spec.population,
            tracked: spec.tracked.min(spec.population),
            result,
        })
        .collect();
    CohortedFleetResult {
        fleet: FleetResult { aggregate, nodes: node_results(&layout, per_node) },
        shards,
        cohorts,
    }
}

/// The collector-generic parallel sharded kernel behind
/// [`run_topology_sharded`]: every shard runs with its own collector
/// (`make(shard, shard_key)` — the declaration index and the shard's
/// canonical content key, so collectors that fold float state can defer
/// to canonical `(key, index)` order like [`PhaseCollector`] does), and
/// the per-shard collectors are folded in stable shard order through
/// [`MergeCollector::merge`]. Returns the aggregate result, the
/// per-shard breakdowns (shard declaration order) and the merged
/// collector.
///
/// The aggregate is bit-identical to feeding one collector through
/// [`run_collected`] on the same topology; the merged collector matches
/// too for the merge-order-insensitive collectors this trait is
/// implemented on.
///
/// # Panics
///
/// Panics on the same invalid specs as [`run_collected`].
pub fn run_sharded_collected<C, F>(
    topo: &TopologySpec<'_>,
    seed: u64,
    workers: usize,
    make: F,
) -> (RunResult, Vec<ShardResult>, C)
where
    C: MergeCollector + Send,
    F: Fn(usize, u64) -> C + Sync,
{
    run_sharded_collected_with(topo, seed, workers, crate::pin::PinPolicy::Off, make)
}

/// [`run_sharded_collected`] with an explicit worker [`PinPolicy`].
///
/// Identical results whatever the policy — pinning only decides *where*
/// worker threads run, never *what* they compute (see [`crate::pin`]).
///
/// # Panics
///
/// Panics on the same invalid specs as [`run_collected`].
///
/// [`PinPolicy`]: crate::pin::PinPolicy
pub fn run_sharded_collected_with<C, F>(
    topo: &TopologySpec<'_>,
    seed: u64,
    workers: usize,
    pin: crate::pin::PinPolicy,
    make: F,
) -> (RunResult, Vec<ShardResult>, C)
where
    C: MergeCollector + Send,
    F: Fn(usize, u64) -> C + Sync,
{
    run_sharded_collected_hedged_with(topo, seed, workers, pin, None, make)
}

/// [`run_sharded_collected_with`] plus an optional
/// [`HedgePlan`](crate::control::HedgePlan): nodes the plan covers
/// duplicate overdue requests to an analytic replica and the first
/// response wins (see [`crate::control::HedgeSpec`] for the model and
/// its low-rate caveat). `hedge: None` is exactly the unhedged kernel —
/// the hedge streams then don't exist, not merely go unused.
///
/// Hedging preserves every determinism contract: the hedge leg draws
/// from fork 7 of the hedged node's own content-addressed master, fires
/// only for measured requests, and dispatches no events — results stay
/// bit-identical whatever `workers`, the pin policy, the OS schedule or
/// the fleet declaration order. The legacy single-node stream layout
/// (one node, unsharded) predates per-node masters and never hedges.
///
/// # Panics
///
/// Panics on the same invalid specs as [`run_collected`].
pub fn run_sharded_collected_hedged_with<C, F>(
    topo: &TopologySpec<'_>,
    seed: u64,
    workers: usize,
    pin: crate::pin::PinPolicy,
    hedge: Option<&crate::control::HedgePlan>,
    make: F,
) -> (RunResult, Vec<ShardResult>, C)
where
    C: MergeCollector + Send,
    F: Fn(usize, u64) -> C + Sync,
{
    validate_topology(topo);
    let layout = topo.layout();
    let master = SimRng::seed_from_u64(seed);
    let plans = build_partitions(topo, layout.nodes(), &master);
    let workers = workers.clamp(1, plans.len());
    let per_shard: Vec<(PartitionOutcome, C)> = if workers <= 1 {
        plans
            .iter()
            .map(|plan| {
                let mut collector = make(plan.shard, plan.key);
                let outcome = run_partition(topo, plan, &master, hedge, &mut collector);
                (outcome, collector)
            })
            .collect()
    } else {
        use std::collections::VecDeque;
        use std::sync::Mutex;

        // Work stealing over the shard sub-simulations. A `HotShard`
        // tier concentrates most of the fleet in one partition; the old
        // self-scheduling queue handed shards out in declaration order,
        // so whichever worker drew the hot shard ran long while the
        // others drained the cheap tail and idled. Two measures fix
        // that: (1) seed the per-worker deques LPT-greedy — shards
        // sorted by estimated cost (offered QPS, the event-count driver)
        // go each to the least-loaded worker, so the hot shard starts
        // immediately on a dedicated worker — and (2) let idle workers
        // steal from the back of their neighbours' deques, so estimation
        // error moves work instead of idling a core. No task is ever
        // *created* after seeding, so a worker that finds every deque
        // empty can safely exit. Results still carry their shard index
        // and merge in canonical order below — the steal schedule
        // cannot leak into a single bit of the output.
        let cost = |s: usize| plans[s].members.iter().map(|&(_, node, _)| node.qps).sum::<f64>();
        let mut order: Vec<usize> = (0..plans.len()).collect();
        order.sort_by(|&a, &b| cost(b).total_cmp(&cost(a)).then(a.cmp(&b)));
        let mut loads = vec![0.0f64; workers];
        let mut seeded: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for s in order {
            let w = (0..workers)
                .min_by(|&a, &b| loads[a].total_cmp(&loads[b]).then(a.cmp(&b)))
                .expect("workers >= 2 here");
            loads[w] += cost(s).max(1.0);
            seeded[w].push_back(s);
        }
        let queues: Vec<Mutex<VecDeque<usize>>> = seeded.into_iter().map(Mutex::new).collect();
        let out: Mutex<Vec<(usize, PartitionOutcome, C)>> = Mutex::new(Vec::with_capacity(plans.len()));
        std::thread::scope(|scope| {
            for w in 0..workers {
                let queues = &queues;
                let out = &out;
                let plans = &plans;
                let master = &master;
                let make = &make;
                scope.spawn(move || {
                    pin.apply(w);
                    loop {
                        // Own deque first (front — the LPT order), then
                        // round-robin over victims (back — the cheap
                        // tail, minimizing contention with the owner).
                        let mut task = queues[w].lock().expect("shard deque poisoned").pop_front();
                        if task.is_none() {
                            for off in 1..workers {
                                let v = (w + off) % workers;
                                task = queues[v].lock().expect("shard deque poisoned").pop_back();
                                if task.is_some() {
                                    break;
                                }
                            }
                        }
                        let Some(s) = task else { break };
                        let plan = &plans[s];
                        let mut collector = make(plan.shard, plan.key);
                        let outcome = run_partition(topo, plan, master, hedge, &mut collector);
                        out.lock().expect("shard results poisoned").push((s, outcome, collector));
                    }
                });
            }
        });
        let mut collected = out.into_inner().expect("shard results poisoned");
        collected.sort_by_key(|&(s, _, _)| s);
        collected.into_iter().map(|(_, outcome, collector)| (outcome, collector)).collect()
    };

    let measured = topo.duration - topo.warmup;
    let mut outcomes: Vec<PartitionOutcome> = Vec::with_capacity(per_shard.len());
    let mut merged: Option<C> = None;
    for (outcome, collector) in per_shard {
        outcomes.push(outcome);
        match &mut merged {
            None => merged = Some(collector),
            Some(acc) => acc.merge(collector),
        }
    }
    let shards = outcomes
        .iter()
        .zip(&plans)
        .map(|(outcome, plan)| ShardResult {
            shard: plan.shard,
            result: outcome.shard_run_result(measured),
            nodes: plan.members.iter().map(|&(i, _, _)| i).collect(),
        })
        .collect();
    let aggregate = finish_run(topo, &outcomes);
    (aggregate, shards, merged.expect("at least one partition"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpv_services::kv::KvConfig;
    use tpv_services::synthetic::SyntheticConfig;
    use tpv_services::ServiceKind;

    fn kv_service() -> ServiceConfig {
        ServiceConfig::without_interference(ServiceKind::Memcached(KvConfig {
            preload_keys: 2_000,
            ..KvConfig::default()
        }))
    }

    fn base_spec<'a>(
        service: &'a ServiceConfig,
        client: &'a MachineConfig,
        server: &'a MachineConfig,
        generator: &'a GeneratorSpec,
        link: &'a LinkConfig,
        qps: f64,
    ) -> RunSpec<'a> {
        RunSpec {
            service,
            server,
            client,
            generator,
            link,
            qps,
            duration: SimDuration::from_ms(60),
            warmup: SimDuration::from_ms(10),
        }
    }

    #[test]
    fn run_produces_samples_near_target_rate() {
        let service = kv_service();
        let client = MachineConfig::high_performance();
        let server = MachineConfig::server_baseline();
        let generator = GeneratorSpec::mutilate();
        let link = LinkConfig::cloudlab_lan();
        let spec = base_spec(&service, &client, &server, &generator, &link, 100_000.0);
        let r = run_once(&spec, 1);
        assert!(r.samples > 3_000, "samples {}", r.samples);
        let ratio = r.achieved_qps / r.target_qps;
        assert!((0.85..1.15).contains(&ratio), "achieved/target {ratio}");
        assert!(r.avg > SimDuration::from_us(20));
        assert!(r.p99 >= r.p50 && r.p50 >= SimDuration::ZERO);
        assert!(r.max >= r.p99);
    }

    #[test]
    fn identical_seed_is_bit_identical() {
        let service = kv_service();
        let client = MachineConfig::low_power();
        let server = MachineConfig::server_baseline();
        let generator = GeneratorSpec::mutilate();
        let link = LinkConfig::cloudlab_lan();
        let spec = base_spec(&service, &client, &server, &generator, &link, 50_000.0);
        let a = run_once(&spec, 42);
        let b = run_once(&spec, 42);
        assert_eq!(a, b);
        let c = run_once(&spec, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn lp_client_measures_higher_latency_than_hp() {
        // Finding 1 in miniature: same server, same load, different
        // client config ⇒ different measurements.
        let service = kv_service();
        let server = MachineConfig::server_baseline();
        let generator = GeneratorSpec::mutilate();
        let link = LinkConfig::cloudlab_lan();
        let lp_cfg = MachineConfig::low_power();
        let hp_cfg = MachineConfig::high_performance();
        let lp = run_once(&base_spec(&service, &lp_cfg, &server, &generator, &link, 100_000.0), 7);
        let hp = run_once(&base_spec(&service, &hp_cfg, &server, &generator, &link, 100_000.0), 7);
        assert!(lp.avg.as_us() > hp.avg.as_us() * 1.3, "LP {} vs HP {}", lp.avg, hp.avg);
        assert!(lp.p99 > hp.p99);
        // LP slips its sends; HP does not.
        assert!(lp.mean_send_slip > hp.mean_send_slip);
        // LP threads take deep sleeps.
        assert!(lp.client_wakes[2] + lp.client_wakes[3] > 0);
    }

    #[test]
    fn closed_loop_bounds_outstanding_requests() {
        let service = ServiceConfig::without_interference(ServiceKind::Synthetic(SyntheticConfig::default()));
        let client = MachineConfig::high_performance();
        let server = MachineConfig::server_baseline();
        let generator = GeneratorSpec::mutilate().closed_loop(SimDuration::from_us(100));
        let link = LinkConfig::cloudlab_lan();
        // qps is only the initial pacing for closed loops.
        let spec = base_spec(&service, &client, &server, &generator, &link, 10_000.0);
        let r = run_once(&spec, 3);
        assert!(r.samples > 100);
        // With 160 connections, ~65 µs RTT+service and 100 µs think time,
        // the closed loop self-limits below ~1M QPS.
        assert!(r.achieved_qps < 1_200_000.0);
    }

    #[test]
    fn warmup_requests_are_excluded() {
        let service = kv_service();
        let client = MachineConfig::high_performance();
        let server = MachineConfig::server_baseline();
        let generator = GeneratorSpec::mutilate();
        let link = LinkConfig::cloudlab_lan();
        let mut spec = base_spec(&service, &client, &server, &generator, &link, 100_000.0);
        let full = run_once(&spec, 9);
        spec.warmup = SimDuration::from_ms(30);
        let trimmed = run_once(&spec, 9);
        assert!(trimmed.samples < full.samples);
    }

    #[test]
    fn healthy_run_truncates_nothing() {
        let service = kv_service();
        let client = MachineConfig::high_performance();
        let server = MachineConfig::server_baseline();
        let generator = GeneratorSpec::mutilate();
        let link = LinkConfig::cloudlab_lan();
        let spec = base_spec(&service, &client, &server, &generator, &link, 100_000.0);
        let r = run_once(&spec, 5);
        assert_eq!(r.truncated_inflight, 0, "unsaturated run must drain fully");
    }

    #[test]
    fn overload_surfaces_truncated_inflight() {
        // 10 workers at ~58 µs+10 ms per request cap the synthetic service
        // near 1K QPS; offering 100K for 60 ms builds a backlog that far
        // outlives the drain horizon, so in-window requests are cut off.
        let service = ServiceConfig::without_interference(ServiceKind::Synthetic(
            SyntheticConfig::with_delay(SimDuration::from_ms(10)),
        ));
        let client = MachineConfig::high_performance();
        let server = MachineConfig::server_baseline();
        let generator = GeneratorSpec::synthetic_client();
        let link = LinkConfig::cloudlab_lan();
        let spec = base_spec(&service, &client, &server, &generator, &link, 100_000.0);
        let r = run_once(&spec, 6);
        assert!(r.truncated_inflight > 0, "saturating backlog must be reported, got 0");
        // The diagnostic counts real requests: bounded by what was sent.
        assert!(r.truncated_inflight < 100_000, "implausible count {}", r.truncated_inflight);
    }

    #[test]
    #[should_panic(expected = "warmup must be shorter")]
    fn bad_warmup_panics() {
        let service = kv_service();
        let client = MachineConfig::high_performance();
        let server = MachineConfig::server_baseline();
        let generator = GeneratorSpec::mutilate();
        let link = LinkConfig::cloudlab_lan();
        let mut spec = base_spec(&service, &client, &server, &generator, &link, 1_000.0);
        spec.warmup = spec.duration;
        run_once(&spec, 0);
    }

    #[test]
    fn one_by_one_topology_equals_run_once() {
        let service = kv_service();
        let client = MachineConfig::low_power();
        let server = MachineConfig::server_baseline();
        let generator = GeneratorSpec::mutilate();
        let link = LinkConfig::cloudlab_lan();
        let spec = base_spec(&service, &client, &server, &generator, &link, 80_000.0);
        let solo = run_once(&spec, 11);
        let nodes = [spec.client_node()];
        let topo = TopologySpec {
            shards: None,
            service: &service,
            server: &server,
            nodes: &nodes,
            duration: spec.duration,
            warmup: spec.warmup,
            cohorts: &[],
        };
        let fleet = run_topology(&topo, 11);
        assert_eq!(fleet.aggregate, solo, "1×1 topology must match run_once bit for bit");
        assert_eq!(fleet.nodes.len(), 1);
        // The single node's breakdown carries the same distribution.
        assert_eq!(fleet.nodes[0].result.p99, solo.p99);
        assert_eq!(fleet.nodes[0].result.samples, solo.samples);
        assert_eq!(fleet.nodes[0].result.client_wakes, solo.client_wakes);
    }

    #[test]
    fn fleet_aggregate_pools_every_node() {
        let service = kv_service();
        let server = MachineConfig::server_baseline();
        let nodes = crate::topology::uniform_fleet(
            "agent",
            MachineConfig::high_performance(),
            GeneratorSpec::mutilate(),
            LinkConfig::cloudlab_lan(),
            100_000.0,
            4,
        );
        let topo = TopologySpec {
            shards: None,
            service: &service,
            server: &server,
            nodes: &nodes,
            duration: SimDuration::from_ms(60),
            warmup: SimDuration::from_ms(10),
            cohorts: &[],
        };
        let fleet = run_topology(&topo, 21);
        assert_eq!(fleet.nodes.len(), 4);
        let pooled: u64 = fleet.nodes.iter().map(|n| n.result.samples).sum();
        assert_eq!(fleet.aggregate.samples, pooled, "aggregate pools per-node samples");
        assert_eq!(fleet.aggregate.target_qps, 100_000.0);
        let ratio = fleet.aggregate.achieved_qps / fleet.aggregate.target_qps;
        assert!((0.85..1.15).contains(&ratio), "achieved/target {ratio}");
        // Every node contributed meaningfully.
        for n in &fleet.nodes {
            assert!(n.result.samples > 500, "{} starved: {}", n.label, n.result.samples);
        }
    }

    #[test]
    fn misconfigured_minority_skews_the_aggregate_tail() {
        // The fleet-scale version of Finding 1: one LP node in an
        // otherwise-HP fleet inflates the pooled p99.
        let service = kv_service();
        let server = MachineConfig::server_baseline();
        let gen = GeneratorSpec::mutilate().with_connections(40);
        let link = LinkConfig::cloudlab_lan();
        let all_good: Vec<ClientNode> = (0..4)
            .map(|i| {
                ClientNode::new(format!("good{i}"), MachineConfig::high_performance(), gen, link, 25_000.0)
            })
            .collect();
        let mut one_bad = all_good.clone();
        one_bad[0] = ClientNode::new("bad0", MachineConfig::low_power(), gen, link, 25_000.0);
        let duration = SimDuration::from_ms(60);
        let warmup = SimDuration::from_ms(10);
        let clean = run_topology(
            &TopologySpec {
                shards: None,
                service: &service,
                server: &server,
                nodes: &all_good,
                duration,
                warmup,
                cohorts: &[],
            },
            5,
        );
        let skewed = run_topology(
            &TopologySpec {
                shards: None,
                service: &service,
                server: &server,
                nodes: &one_bad,
                duration,
                warmup,
                cohorts: &[],
            },
            5,
        );
        assert!(
            skewed.aggregate.p99 > clean.aggregate.p99,
            "one bad client must inflate the pooled tail: {} !> {}",
            skewed.aggregate.p99,
            clean.aggregate.p99
        );
        // The breakdown points at the culprit.
        let bad = skewed.node("bad0").unwrap();
        let good = skewed.node("good1").unwrap();
        assert!(bad.result.avg > good.result.avg);
        assert!(bad.result.mean_send_slip > good.result.mean_send_slip);
        assert_eq!(skewed.worst_node_p99(), skewed.nodes.iter().map(|n| n.result.p99).max().unwrap());
        assert!(skewed.worst_node_p99() >= skewed.best_node_p99());
    }
}
