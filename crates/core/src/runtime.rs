//! The composed testbed runtime: one `run_once` call = one paper "run".
//!
//! Wires the generator ([`tpv_loadgen::ClientSide`]), the network
//! ([`tpv_net`]) and the service ([`tpv_services::ServiceInstance`])
//! through a deterministic event loop. Each run draws a fresh
//! [`tpv_hw::RunEnvironment`] for the client and the server — the paper's
//! "in between runs we reset the environment" — so per-run samples are
//! iid by construction.

use tpv_hw::MachineConfig;
use tpv_loadgen::{ArrivalProcess, ClientSide, GeneratorSpec, LoopMode};
use tpv_net::{Connection, Link, LinkConfig};
use tpv_services::{RequestDescriptor, ServiceConfig, ServiceInstance};
use tpv_sim::{EventQueue, LatencyHistogram, SimDuration, SimRng, SimTime};

/// Everything needed to execute one run.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec<'a> {
    /// The benchmark service and its interference profile.
    pub service: &'a ServiceConfig,
    /// Server machine configuration.
    pub server: &'a MachineConfig,
    /// Client machine configuration — the paper's variable under study.
    pub client: &'a MachineConfig,
    /// Workload generator deployment.
    pub generator: &'a GeneratorSpec,
    /// Network between client and server machines.
    pub link: &'a LinkConfig,
    /// Offered load in queries per second.
    pub qps: f64,
    /// Measured run length (the paper uses 2-minute runs; benches scale
    /// this down — see EXPERIMENTS.md).
    pub duration: SimDuration,
    /// Leading portion of the run excluded from measurement.
    pub warmup: SimDuration,
}

/// The measurements of one run — one iid sample of each metric (§III).
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Mean end-to-end latency over recorded requests.
    pub avg: SimDuration,
    /// Median end-to-end latency.
    pub p50: SimDuration,
    /// 99th-percentile latency — the paper's headline tail metric.
    pub p99: SimDuration,
    /// Largest recorded latency.
    pub max: SimDuration,
    /// Within-run standard deviation of request latencies.
    pub std_dev: SimDuration,
    /// Recorded requests.
    pub samples: u64,
    /// Load actually achieved (responses per measured second).
    pub achieved_qps: f64,
    /// Load requested.
    pub target_qps: f64,
    /// Fraction of sends that slipped their schedule (workload-fidelity
    /// diagnostic).
    pub late_send_fraction: f64,
    /// Mean slip between scheduled and actual send times.
    pub mean_send_slip: SimDuration,
    /// Client-thread wake-ups per C-state `[C0, C1, C1E, C6]`.
    pub client_wakes: [u64; 4],
    /// Estimated client generator-thread energy over the run, in
    /// core-seconds of C0-equivalent power.
    pub client_energy_core_secs: f64,
    /// Requests stamped inside the measurement window whose responses
    /// were still in flight when the drain horizon expired, and which are
    /// therefore missing from the latency histogram. A non-zero value
    /// means the recorded tail is right-censored — a fidelity diagnostic
    /// (see [`crate::fidelity`]), not merely lost work.
    pub truncated_inflight: u64,
}

impl RunResult {
    /// Mean latency in microseconds (report convenience).
    pub fn avg_us(&self) -> f64 {
        self.avg.as_us()
    }

    /// p99 latency in microseconds (report convenience).
    pub fn p99_us(&self) -> f64 {
        self.p99.as_us()
    }
}

#[derive(Debug, Clone, Copy)]
enum Event {
    SendDue {
        conn: u32,
    },
    ServerArrival {
        conn: u32,
        desc: RequestDescriptor,
        stamp: SimTime,
    },
    ServiceStage {
        conn: u32,
        desc: RequestDescriptor,
        stamp: SimTime,
        stage: u8,
        ctx: tpv_services::request::StageCtx,
    },
    ClientDelivery {
        conn: u32,
        stamp: SimTime,
    },
}

/// A bounded trace of one run, for workload-fidelity diagnostics
/// (Lancet-style self-checks; see [`crate::fidelity`]).
#[derive(Debug, Clone, Default)]
pub struct RunTrace {
    /// `(connection, wire departure time)` of traced sends, in event
    /// order.
    pub wire_departures: Vec<(u32, SimTime)>,
    /// Measured latencies (µs) in completion order.
    pub latencies_us: Vec<f64>,
    /// The scheduled mean per-connection inter-arrival gap (µs).
    pub scheduled_gap_us: f64,
}

/// Executes one run of the testbed with the given seed.
///
/// Deterministic: the same `(spec, seed)` produces bit-identical results.
///
/// # Panics
///
/// Panics if `qps` is not positive or `warmup >= duration`.
pub fn run_once(spec: &RunSpec<'_>, seed: u64) -> RunResult {
    run_traced(spec, seed, 0).0
}

/// Like [`run_once`], additionally collecting up to `max_trace` traced
/// sends and latencies for fidelity diagnostics.
///
/// # Panics
///
/// Panics if `qps` is not positive or `warmup >= duration`.
pub fn run_traced(spec: &RunSpec<'_>, seed: u64, max_trace: usize) -> (RunResult, RunTrace) {
    assert!(spec.qps > 0.0, "offered load must be positive, got {}", spec.qps);
    assert!(spec.warmup < spec.duration, "warmup must be shorter than the run");

    let master = SimRng::seed_from_u64(seed);
    let mut arrival_rng = master.fork(1);
    let mut client_rng = master.fork(2);
    let mut service_rng = master.fork(3);
    let mut net_rng = master.fork(4);
    let mut env_rng = master.fork(5);

    // Reset the environment: fresh per-run hardware state (§III iid).
    let client_env = spec.client.draw_environment(&mut env_rng);
    let server_env = spec.server.draw_environment(&mut env_rng);

    let mut client = ClientSide::new(*spec.generator, spec.client, &client_env);
    let mut service =
        ServiceInstance::new(spec.service, spec.server, &server_env, spec.duration, &mut service_rng);
    let link = Link::new(spec.link, &mut net_rng);

    let n_conns = spec.generator.connections.max(1) as usize;
    let mut conns: Vec<Connection> = (0..n_conns).map(Connection::new).collect();
    let per_conn_gap = SimDuration::from_secs_f64(n_conns as f64 / spec.qps);
    let arrivals = ArrivalProcess::new(spec.generator.arrival, per_conn_gap);

    let mut queue: EventQueue<Event> = EventQueue::with_capacity(4 * n_conns);
    // Stagger connection start phases uniformly across one mean gap.
    for conn in 0..n_conns {
        let phase = per_conn_gap.scale(arrival_rng.next_f64());
        queue.schedule(SimTime::ZERO + phase, Event::SendDue { conn: conn as u32 });
    }

    let window_start = SimTime::ZERO + spec.warmup;
    let window_end = SimTime::ZERO + spec.duration;
    // Runs drain in-flight requests after the send window closes, with a
    // hard horizon to bound pathological backlogs.
    let horizon = window_end + spec.duration + SimDuration::from_secs(5);

    let mut hist = LatencyHistogram::new();
    // In-window requests sent but not yet delivered: whatever is left
    // when the loop ends was cut off by the drain horizon and is missing
    // from the histogram (right-censored tail).
    let mut inflight_measured: u64 = 0;
    let pom = spec.generator.pom;
    let mut trace = RunTrace {
        wire_departures: Vec::with_capacity(max_trace.min(1 << 20)),
        latencies_us: Vec::with_capacity(max_trace.min(1 << 20)),
        scheduled_gap_us: per_conn_gap.as_us(),
    };

    while let Some((now, event)) = queue.pop() {
        if now > horizon {
            break;
        }
        match event {
            Event::SendDue { conn } => {
                let desc = service.next_descriptor(&mut service_rng);
                let plan = client.plan_send(conn as usize, now, &mut client_rng);
                let raw = plan.wire + link.one_way(&mut net_rng);
                let arrival = conns[conn as usize].deliver_to_server(raw);
                if trace.wire_departures.len() < max_trace && now >= window_start {
                    trace.wire_departures.push((conn, plan.wire));
                }
                if plan.stamp >= window_start && plan.stamp < window_end {
                    inflight_measured += 1;
                }
                queue.schedule(arrival, Event::ServerArrival { conn, desc, stamp: plan.stamp });
                if spec.generator.loop_mode == LoopMode::Open {
                    let next = now + arrivals.next_gap(&mut arrival_rng);
                    if next < window_end {
                        queue.schedule(next, Event::SendDue { conn });
                    }
                }
            }
            Event::ServerArrival { conn, desc, stamp } => {
                match service.admit(conn as usize, &desc, now, &mut service_rng) {
                    tpv_services::request::StageOutcome::Done(done) => {
                        let raw = done.response_wire + link.one_way(&mut net_rng);
                        let nic = link.coalesce(conns[conn as usize].deliver_to_client(raw));
                        queue.schedule(nic, Event::ClientDelivery { conn, stamp });
                    }
                    tpv_services::request::StageOutcome::Continue { at, stage, ctx } => {
                        queue.schedule(at, Event::ServiceStage { conn, desc, stamp, stage, ctx });
                    }
                }
            }
            Event::ServiceStage { conn, desc, stamp, stage, ctx } => {
                match service.resume(conn as usize, &desc, stage, ctx, now, &mut service_rng) {
                    tpv_services::request::StageOutcome::Done(done) => {
                        let raw = done.response_wire + link.one_way(&mut net_rng);
                        let nic = link.coalesce(conns[conn as usize].deliver_to_client(raw));
                        queue.schedule(nic, Event::ClientDelivery { conn, stamp });
                    }
                    tpv_services::request::StageOutcome::Continue { at, stage, ctx } => {
                        queue.schedule(at, Event::ServiceStage { conn, desc, stamp, stage, ctx });
                    }
                }
            }
            Event::ClientDelivery { conn, stamp } => {
                let recv = client.receive(conn as usize, now, &mut client_rng);
                let measured = recv.stamp(pom).since(stamp);
                if stamp >= window_start && stamp < window_end {
                    inflight_measured -= 1;
                    hist.record(measured);
                    if trace.latencies_us.len() < max_trace {
                        trace.latencies_us.push(measured.as_us());
                    }
                }
                if spec.generator.loop_mode == LoopMode::Closed {
                    let next = recv.app + spec.generator.think_time;
                    if next < window_end {
                        queue.schedule(next, Event::SendDue { conn });
                    }
                }
            }
        }
    }

    let measured_secs = (spec.duration - spec.warmup).as_secs();
    let result = RunResult {
        avg: hist.mean(),
        p50: hist.median(),
        p99: hist.percentile(99.0),
        max: hist.max(),
        std_dev: hist.std_dev(),
        samples: hist.count(),
        achieved_qps: hist.count() as f64 / measured_secs,
        target_qps: spec.qps,
        late_send_fraction: client.late_send_fraction(),
        mean_send_slip: client.mean_send_slip(),
        client_wakes: client.wakes_by_state(),
        client_energy_core_secs: client.energy_core_secs(window_end),
        truncated_inflight: inflight_measured,
    };
    (result, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpv_services::kv::KvConfig;
    use tpv_services::synthetic::SyntheticConfig;
    use tpv_services::ServiceKind;

    fn kv_service() -> ServiceConfig {
        ServiceConfig::without_interference(ServiceKind::Memcached(KvConfig {
            preload_keys: 2_000,
            ..KvConfig::default()
        }))
    }

    fn base_spec<'a>(
        service: &'a ServiceConfig,
        client: &'a MachineConfig,
        server: &'a MachineConfig,
        generator: &'a GeneratorSpec,
        link: &'a LinkConfig,
        qps: f64,
    ) -> RunSpec<'a> {
        RunSpec {
            service,
            server,
            client,
            generator,
            link,
            qps,
            duration: SimDuration::from_ms(60),
            warmup: SimDuration::from_ms(10),
        }
    }

    #[test]
    fn run_produces_samples_near_target_rate() {
        let service = kv_service();
        let client = MachineConfig::high_performance();
        let server = MachineConfig::server_baseline();
        let generator = GeneratorSpec::mutilate();
        let link = LinkConfig::cloudlab_lan();
        let spec = base_spec(&service, &client, &server, &generator, &link, 100_000.0);
        let r = run_once(&spec, 1);
        assert!(r.samples > 3_000, "samples {}", r.samples);
        let ratio = r.achieved_qps / r.target_qps;
        assert!((0.85..1.15).contains(&ratio), "achieved/target {ratio}");
        assert!(r.avg > SimDuration::from_us(20));
        assert!(r.p99 >= r.p50 && r.p50 >= SimDuration::ZERO);
        assert!(r.max >= r.p99);
    }

    #[test]
    fn identical_seed_is_bit_identical() {
        let service = kv_service();
        let client = MachineConfig::low_power();
        let server = MachineConfig::server_baseline();
        let generator = GeneratorSpec::mutilate();
        let link = LinkConfig::cloudlab_lan();
        let spec = base_spec(&service, &client, &server, &generator, &link, 50_000.0);
        let a = run_once(&spec, 42);
        let b = run_once(&spec, 42);
        assert_eq!(a, b);
        let c = run_once(&spec, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn lp_client_measures_higher_latency_than_hp() {
        // Finding 1 in miniature: same server, same load, different
        // client config ⇒ different measurements.
        let service = kv_service();
        let server = MachineConfig::server_baseline();
        let generator = GeneratorSpec::mutilate();
        let link = LinkConfig::cloudlab_lan();
        let lp_cfg = MachineConfig::low_power();
        let hp_cfg = MachineConfig::high_performance();
        let lp = run_once(&base_spec(&service, &lp_cfg, &server, &generator, &link, 100_000.0), 7);
        let hp = run_once(&base_spec(&service, &hp_cfg, &server, &generator, &link, 100_000.0), 7);
        assert!(lp.avg.as_us() > hp.avg.as_us() * 1.3, "LP {} vs HP {}", lp.avg, hp.avg);
        assert!(lp.p99 > hp.p99);
        // LP slips its sends; HP does not.
        assert!(lp.mean_send_slip > hp.mean_send_slip);
        // LP threads take deep sleeps.
        assert!(lp.client_wakes[2] + lp.client_wakes[3] > 0);
    }

    #[test]
    fn closed_loop_bounds_outstanding_requests() {
        let service = ServiceConfig::without_interference(ServiceKind::Synthetic(SyntheticConfig::default()));
        let client = MachineConfig::high_performance();
        let server = MachineConfig::server_baseline();
        let generator = GeneratorSpec::mutilate().closed_loop(SimDuration::from_us(100));
        let link = LinkConfig::cloudlab_lan();
        // qps is only the initial pacing for closed loops.
        let spec = base_spec(&service, &client, &server, &generator, &link, 10_000.0);
        let r = run_once(&spec, 3);
        assert!(r.samples > 100);
        // With 160 connections, ~65 µs RTT+service and 100 µs think time,
        // the closed loop self-limits below ~1M QPS.
        assert!(r.achieved_qps < 1_200_000.0);
    }

    #[test]
    fn warmup_requests_are_excluded() {
        let service = kv_service();
        let client = MachineConfig::high_performance();
        let server = MachineConfig::server_baseline();
        let generator = GeneratorSpec::mutilate();
        let link = LinkConfig::cloudlab_lan();
        let mut spec = base_spec(&service, &client, &server, &generator, &link, 100_000.0);
        let full = run_once(&spec, 9);
        spec.warmup = SimDuration::from_ms(30);
        let trimmed = run_once(&spec, 9);
        assert!(trimmed.samples < full.samples);
    }

    #[test]
    fn healthy_run_truncates_nothing() {
        let service = kv_service();
        let client = MachineConfig::high_performance();
        let server = MachineConfig::server_baseline();
        let generator = GeneratorSpec::mutilate();
        let link = LinkConfig::cloudlab_lan();
        let spec = base_spec(&service, &client, &server, &generator, &link, 100_000.0);
        let r = run_once(&spec, 5);
        assert_eq!(r.truncated_inflight, 0, "unsaturated run must drain fully");
    }

    #[test]
    fn overload_surfaces_truncated_inflight() {
        // 10 workers at ~58 µs+10 ms per request cap the synthetic service
        // near 1K QPS; offering 100K for 60 ms builds a backlog that far
        // outlives the drain horizon, so in-window requests are cut off.
        let service = ServiceConfig::without_interference(ServiceKind::Synthetic(
            SyntheticConfig::with_delay(SimDuration::from_ms(10)),
        ));
        let client = MachineConfig::high_performance();
        let server = MachineConfig::server_baseline();
        let generator = GeneratorSpec::synthetic_client();
        let link = LinkConfig::cloudlab_lan();
        let spec = base_spec(&service, &client, &server, &generator, &link, 100_000.0);
        let r = run_once(&spec, 6);
        assert!(r.truncated_inflight > 0, "saturating backlog must be reported, got 0");
        // The diagnostic counts real requests: bounded by what was sent.
        assert!(r.truncated_inflight < 100_000, "implausible count {}", r.truncated_inflight);
    }

    #[test]
    #[should_panic(expected = "warmup must be shorter")]
    fn bad_warmup_panics() {
        let service = kv_service();
        let client = MachineConfig::high_performance();
        let server = MachineConfig::server_baseline();
        let generator = GeneratorSpec::mutilate();
        let link = LinkConfig::cloudlab_lan();
        let mut spec = base_spec(&service, &client, &server, &generator, &link, 1_000.0);
        spec.warmup = spec.duration;
        run_once(&spec, 0);
    }
}
