//! Ready-made paper studies (§V) and the scenario taxonomy of Table III.

use tpv_hw::MachineConfig;
use tpv_loadgen::{LoopMode, PointOfMeasurement, TimingMode};
use tpv_sim::SimDuration;

use crate::experiment::{Benchmark, Experiment, ExperimentBuilder, ServerScenario};

/// The paper's Memcached QPS sweep: 10K–500K (§V-A).
pub const MEMCACHED_QPS: [f64; 7] =
    [10_000.0, 50_000.0, 100_000.0, 200_000.0, 300_000.0, 400_000.0, 500_000.0];

/// The paper's HDSearch QPS sweep: 500–2500 (§V-B).
pub const HDSEARCH_QPS: [f64; 5] = [500.0, 1000.0, 1500.0, 2000.0, 2500.0];

/// The paper's Social Network QPS sweep: 100–600 (§V-B).
pub const SOCIALNET_QPS: [f64; 6] = [100.0, 200.0, 300.0, 400.0, 500.0, 600.0];

/// The paper's synthetic delay sweep: 0–400 µs (§V-B).
pub const SYNTHETIC_DELAYS_US: [u64; 5] = [0, 100, 200, 300, 400];

/// The paper's synthetic QPS points: 5K–20K (bounded by Little's law so
/// concurrency stays below the 10 workers).
pub const SYNTHETIC_QPS: [f64; 4] = [5_000.0, 10_000.0, 15_000.0, 20_000.0];

fn both_clients(builder: ExperimentBuilder) -> ExperimentBuilder {
    builder.client(MachineConfig::low_power()).client(MachineConfig::high_performance())
}

/// Fig. 2: Memcached, SMT on/off server, LP/HP clients, 10K–500K QPS.
pub fn memcached_smt_study(qps: &[f64], runs: usize, duration: SimDuration, seed: u64) -> Experiment {
    both_clients(Experiment::builder(Benchmark::memcached()))
        .server(ServerScenario::baseline())
        .server(ServerScenario::smt_on())
        .qps(qps)
        .runs(runs)
        .run_duration(duration)
        .seed(seed)
        .build()
}

/// Fig. 3: Memcached, C1E on/off server, LP/HP clients.
pub fn memcached_c1e_study(qps: &[f64], runs: usize, duration: SimDuration, seed: u64) -> Experiment {
    both_clients(Experiment::builder(Benchmark::memcached()))
        .server(ServerScenario::baseline())
        .server(ServerScenario::c1e_on())
        .qps(qps)
        .runs(runs)
        .run_duration(duration)
        .seed(seed)
        .build()
}

/// Fig. 4 (left): HDSearch with SMT on/off.
pub fn hdsearch_smt_study(qps: &[f64], runs: usize, duration: SimDuration, seed: u64) -> Experiment {
    both_clients(Experiment::builder(Benchmark::hdsearch()))
        .server(ServerScenario::baseline())
        .server(ServerScenario::smt_on())
        .qps(qps)
        .runs(runs)
        .run_duration(duration)
        .seed(seed)
        .build()
}

/// Fig. 4 (right): HDSearch with C1E on/off.
pub fn hdsearch_c1e_study(qps: &[f64], runs: usize, duration: SimDuration, seed: u64) -> Experiment {
    both_clients(Experiment::builder(Benchmark::hdsearch()))
        .server(ServerScenario::baseline())
        .server(ServerScenario::c1e_on())
        .qps(qps)
        .runs(runs)
        .run_duration(duration)
        .seed(seed)
        .build()
}

/// Fig. 6: Social Network with the baseline server, LP/HP clients.
pub fn socialnet_study(qps: &[f64], runs: usize, duration: SimDuration, seed: u64) -> Experiment {
    both_clients(Experiment::builder(Benchmark::social_network()))
        .server(ServerScenario::baseline())
        .qps(qps)
        .runs(runs)
        .run_duration(duration)
        .seed(seed)
        .build()
}

/// Fig. 7: the synthetic service at one added delay, LP/HP clients
/// (§V-B runs 20 repetitions).
pub fn synthetic_study(
    delay: SimDuration,
    qps: &[f64],
    runs: usize,
    duration: SimDuration,
    seed: u64,
) -> Experiment {
    both_clients(Experiment::builder(Benchmark::synthetic(delay)))
        .server(ServerScenario::baseline())
        .qps(qps)
        .runs(runs)
        .run_duration(duration)
        .seed(seed)
        .build()
}

/// One row of the paper's Table III.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Open/closed loop of the generator design.
    pub loop_mode: LoopMode,
    /// Inter-arrival timing implementation.
    pub timing: TimingMode,
    /// Point of measurement.
    pub pom: PointOfMeasurement,
    /// Whether the client configuration is tuned (HP) or default (LP).
    pub client_tuned: bool,
    /// Whether the service's response time is small (µs-scale) or big
    /// (ms-scale).
    pub small_response_time: bool,
    /// Whether the paper flags this scenario as risking wrong conclusions.
    pub risk: bool,
    /// Paper sections evaluating the scenario.
    pub sections: &'static str,
}

impl Scenario {
    /// Taxonomy label like
    /// `"open-loop time-sensitive / in-app / not-tuned / small"`.
    pub fn label(&self) -> String {
        format!(
            "{} {} / {} / {} / {}",
            match self.loop_mode {
                LoopMode::Open => "open-loop",
                LoopMode::Closed => "closed-loop",
            },
            match self.timing {
                TimingMode::BlockWait => "time-sensitive",
                TimingMode::BusyWait => "time-insensitive",
            },
            match self.pom {
                PointOfMeasurement::InApp => "in-app",
                PointOfMeasurement::Kernel => "kernel",
                PointOfMeasurement::Nic => "nic",
            },
            if self.client_tuned { "tuned" } else { "not-tuned" },
            if self.small_response_time { "small" } else { "big" },
        )
    }
}

/// The four scenarios of Table III.
pub fn table_iii() -> Vec<Scenario> {
    vec![
        Scenario {
            loop_mode: LoopMode::Open,
            timing: TimingMode::BlockWait,
            pom: PointOfMeasurement::InApp,
            client_tuned: true,
            small_response_time: true,
            risk: false,
            sections: "5.1,5.3",
        },
        Scenario {
            loop_mode: LoopMode::Open,
            timing: TimingMode::BlockWait,
            pom: PointOfMeasurement::InApp,
            client_tuned: false,
            small_response_time: true,
            risk: true,
            sections: "5.1,5.3",
        },
        Scenario {
            loop_mode: LoopMode::Open,
            timing: TimingMode::BusyWait,
            pom: PointOfMeasurement::InApp,
            client_tuned: true,
            small_response_time: false,
            risk: false,
            sections: "5.2",
        },
        Scenario {
            loop_mode: LoopMode::Open,
            timing: TimingMode::BusyWait,
            pom: PointOfMeasurement::InApp,
            client_tuned: false,
            small_response_time: false,
            risk: false,
            sections: "5.2",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_match_the_paper() {
        assert_eq!(MEMCACHED_QPS.len(), 7);
        assert_eq!(MEMCACHED_QPS[0], 10_000.0);
        assert_eq!(MEMCACHED_QPS[6], 500_000.0);
        assert_eq!(HDSEARCH_QPS[4], 2_500.0);
        assert_eq!(SOCIALNET_QPS[5], 600.0);
        assert_eq!(SYNTHETIC_DELAYS_US.to_vec(), vec![0, 100, 200, 300, 400]);
        assert_eq!(SYNTHETIC_QPS[3], 20_000.0);
    }

    #[test]
    fn table_iii_has_exactly_one_risky_scenario() {
        let rows = table_iii();
        assert_eq!(rows.len(), 4);
        let risky: Vec<&Scenario> = rows.iter().filter(|s| s.risk).collect();
        assert_eq!(risky.len(), 1);
        // The risky one: time-sensitive, in-app, not tuned, small response.
        let r = risky[0];
        assert_eq!(r.timing, TimingMode::BlockWait);
        assert!(!r.client_tuned);
        assert!(r.small_response_time);
        assert!(r.label().contains("not-tuned"));
        assert!(r.label().contains("time-sensitive"));
    }

    #[test]
    fn study_constructors_build_expected_matrices() {
        let e = memcached_smt_study(&[10_000.0], 2, SimDuration::from_ms(20), 1);
        let r = e.run();
        // 2 clients × 2 servers × 1 qps.
        assert_eq!(r.cells().len(), 4);
        assert!(r.cell("LP", "SMTon", 10_000.0).is_some());
        assert!(r.cell("HP", "SMToff", 10_000.0).is_some());
    }

    #[test]
    fn c1e_study_uses_c1e_scenario() {
        let e = memcached_c1e_study(&[10_000.0], 1, SimDuration::from_ms(10), 2);
        let r = e.run();
        assert!(r.cell("LP", "C1Eon", 10_000.0).is_some());
        assert!(r.cell("LP", "SMToff", 10_000.0).is_some(), "baseline is labelled SMToff per Table IV");
    }
}
