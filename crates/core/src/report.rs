//! Report rendering: markdown tables, CSV series and the Fig. 9-style
//! frequency chart, shared by every figure/table binary in `tpv-bench`.

use std::fmt::Write as _;

/// A simple column-aligned markdown table builder.
#[derive(Debug, Clone)]
pub struct MarkdownTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl MarkdownTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        MarkdownTable { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            out.push('|');
            for i in 0..cols {
                let _ = write!(out, " {:<w$} |", cells[i], w = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// A CSV document builder (no quoting needed for numeric reports).
#[derive(Debug, Clone)]
pub struct Csv {
    lines: Vec<String>,
}

impl Csv {
    /// Creates a CSV with a header row.
    pub fn new(header: &[&str]) -> Self {
        Csv { lines: vec![header.join(",")] }
    }

    /// Appends a data row.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.lines.push(cells.join(","));
        self
    }

    /// Renders the document.
    pub fn render(&self) -> String {
        let mut s = self.lines.join("\n");
        s.push('\n');
        s
    }

    /// Writes the document to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating directories or writing.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.render())
    }
}

/// An ASCII frequency chart in the style of the paper's Fig. 9: bucketed
/// counts of per-run averages, with the median bucket marked.
pub fn frequency_chart(samples_us: &[f64], buckets: usize) -> String {
    if samples_us.is_empty() || buckets == 0 {
        return String::from("(no samples)\n");
    }
    let mut sorted = samples_us.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let median = sorted[sorted.len() / 2];
    let lo = sorted[0];
    let hi = sorted[sorted.len() - 1];
    let width = ((hi - lo) / buckets as f64).max(1e-9);
    let mut counts = vec![0usize; buckets];
    for &x in samples_us {
        let b = (((x - lo) / width) as usize).min(buckets - 1);
        counts[b] += 1;
    }
    let max_count = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    let _ = writeln!(out, "Average Response Time (us) | Frequency of Occurrence");
    for (i, &c) in counts.iter().enumerate() {
        let low = lo + i as f64 * width;
        let high = low + width;
        let bar = "#".repeat(c * 40 / max_count);
        let marker = if median >= low && median < high + 1e-12 { " <- median" } else { "" };
        let _ = writeln!(out, "{low:>8.1}-{high:<8.1} | {bar} {c}{marker}");
    }
    out
}

/// Formats a microsecond value the way the paper's tables do.
pub fn us(v: f64) -> String {
    if v >= 1000.0 {
        format!("{:.2}ms", v / 1000.0)
    } else {
        format!("{v:.1}us")
    }
}

/// Formats a ratio ("1.13x").
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_renders_aligned() {
        let mut t = MarkdownTable::new(&["Config", "QPS", "Avg"]);
        t.row(&["LP-SMToff".into(), "10000".into(), "101.2".into()]);
        t.row(&["HP".into(), "500000".into(), "99".into()]);
        let s = t.render();
        assert!(s.contains("| Config    |"));
        assert!(s.lines().count() == 4);
        assert!(s.lines().nth(1).unwrap().starts_with("|--"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn markdown_rejects_ragged_rows() {
        MarkdownTable::new(&["a", "b"]).row(&["only-one".into()]);
    }

    #[test]
    fn csv_round_trips() {
        let mut c = Csv::new(&["qps", "avg_us"]);
        c.row(&["10000".into(), "101.5".into()]);
        let s = c.render();
        assert_eq!(s, "qps,avg_us\n10000,101.5\n");
    }

    #[test]
    fn csv_writes_files() {
        let dir = std::env::temp_dir().join("tpv_report_test");
        let path = dir.join("nested").join("out.csv");
        let mut c = Csv::new(&["x"]);
        c.row(&["1".into()]);
        c.write_to(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("x\n1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn frequency_chart_marks_median() {
        let samples: Vec<f64> = (0..50).map(|i| 90.0 + (i % 17) as f64).collect();
        let chart = frequency_chart(&samples, 17);
        assert!(chart.contains("<- median"));
        assert!(chart.contains('#'));
        assert_eq!(frequency_chart(&[], 5), "(no samples)\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(us(101.23), "101.2us");
        assert_eq!(us(2300.0), "2.30ms");
        assert_eq!(ratio(1.1312), "1.13x");
    }
}
