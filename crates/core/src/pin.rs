//! Worker-thread core pinning for the sharded runner.
//!
//! The paper's testbed pins its server threads to cores to keep
//! scheduler migrations out of the measurement (§IV-B pins memcached's
//! 10 workers on one socket); this module gives the *simulator's own*
//! shard workers the same treatment. A migrated worker drags its working
//! set across LLC domains mid-run, which shows up as wall-clock
//! variability in the very benchmark harness (`perf_probe`) this
//! repository uses to gate kernel regressions — pinning trades a little
//! scheduler freedom for steadier trial-to-trial timings on multi-core
//! runners.
//!
//! Pinning is **off by default** ([`PinPolicy::Off`]) and purely a
//! placement decision: shard results are bit-identical with pinning on,
//! off, or unsupported, because the sharded merge happens in canonical
//! `(shard_key, idx)` order whatever thread ran which shard —
//! `perf_probe --pin` asserts exactly that. On non-Linux targets (and on
//! kernels that reject the affinity call) pinning degrades to a no-op.
//!
//! The only `unsafe` in the workspace lives here: one direct
//! `sched_setaffinity(2)` declaration, scoped to this module behind
//! `#[allow(unsafe_code)]` while the crate as a whole stays
//! `#![deny(unsafe_code)]`.

/// Placement policy for the sharded runner's worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PinPolicy {
    /// Let the OS scheduler place workers (the default).
    #[default]
    Off,
    /// Pin worker `w` to CPU `w % available_parallelism`, round-robin.
    ///
    /// Best-effort: unsupported targets and failed affinity calls are
    /// ignored (the worker simply runs unpinned), so results never
    /// depend on the policy actually sticking.
    RoundRobin,
}

impl PinPolicy {
    /// Applies the policy to the calling thread as worker `worker` of a
    /// pool. Returns whether an affinity mask was actually installed —
    /// informational only; callers must not branch results on it.
    pub fn apply(self, worker: usize) -> bool {
        match self {
            PinPolicy::Off => false,
            PinPolicy::RoundRobin => {
                let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
                sys::pin_current_thread(worker % cores)
            }
        }
    }
}

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod sys {
    /// CPU mask sized for 1024 CPUs — the kernel's default `cpu_set_t`
    /// width, expressed as `u64` words.
    const MASK_WORDS: usize = 16;

    extern "C" {
        /// `sched_setaffinity(2)`, linked from the libc `std` already
        /// pulls in. `pid == 0` targets the calling thread.
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }

    /// Pins the calling thread to `cpu`. Best-effort: returns `false`
    /// when the CPU index exceeds the mask or the kernel refuses.
    pub fn pin_current_thread(cpu: usize) -> bool {
        let mut mask = [0u64; MASK_WORDS];
        let Some(word) = mask.get_mut(cpu / 64) else {
            return false;
        };
        *word = 1u64 << (cpu % 64);
        // SAFETY: `mask` is a live, properly aligned `[u64; 16]` for the
        // whole call and `cpusetsize` is exactly its byte length;
        // `sched_setaffinity` only reads `cpusetsize` bytes from it and
        // touches no other user memory. pid 0 names the calling thread,
        // so no foreign process state is involved.
        let rc = unsafe { sched_setaffinity(0, std::mem::size_of::<[u64; MASK_WORDS]>(), mask.as_ptr()) };
        rc == 0
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    /// Non-Linux targets have no `sched_setaffinity`; pinning is a no-op.
    pub fn pin_current_thread(_cpu: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_never_pins() {
        assert!(!PinPolicy::Off.apply(0));
        assert!(!PinPolicy::Off.apply(7));
    }

    #[test]
    fn round_robin_is_best_effort_and_wraps() {
        // Whatever the platform answers, the call must not panic and the
        // worker index may exceed the core count (round-robin wrap).
        let _ = PinPolicy::RoundRobin.apply(0);
        let _ = PinPolicy::RoundRobin.apply(usize::MAX % 4096);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn round_robin_pins_on_linux() {
        // CPU 0 always exists; the affinity call should succeed inside
        // any standard cpuset.
        assert!(PinPolicy::RoundRobin.apply(0));
    }

    #[test]
    fn default_is_off() {
        assert_eq!(PinPolicy::default(), PinPolicy::Off);
    }
}
