//! Composable simulation topologies: N client nodes × per-pair links × a
//! server tier.
//!
//! The paper's testbed is one client machine, one link, one server — the
//! trivial 1×1 topology. Real deployments run *fleets* of load-generator
//! agents whose hardware configurations are not identical (ConfigTron's
//! heterogeneous fleets, mutilate's multi-agent deployments), which is
//! exactly where client-side configuration skew becomes a fleet-level
//! data-quality problem. A [`TopologySpec`] describes such a deployment:
//!
//! * each [`ClientNode`] is one load-generating machine with its own
//!   hardware configuration, generator deployment, offered load and
//!   **per-pair link** to the server;
//! * the server tier is shared — every node's requests land on the same
//!   [`tpv_services::ServiceInstance`] worker queues, keyed by
//!   [`tpv_services::NodeConn`] so connection spaces stay disjoint;
//! * randomness is **content-addressed per node** (see
//!   `node_stream_keys`): a node's environment draws, arrival schedule
//!   and link jitter depend on what the node *is*, not where it appears
//!   in the declaration — permuting the fleet cannot change any node's
//!   results.
//!
//! [`crate::runtime::run_topology`] executes a topology and returns a
//! [`FleetResult`]: the familiar aggregate [`RunResult`] plus one
//! [`NodeResult`] per client node.
//!
//! Population-scale fleets compress through [`CohortSpec`]s: nodes
//! sharing one configuration class collapse into a single *pooled* node
//! whose arrival process is the Poisson superposition of the members'
//! (rate = population × per-member qps), plus a handful of `tracked`
//! exact replicas for per-client drill-down. Memory and per-event cost
//! scale with the *lowered* node count, not the modeled population —
//! a million-client fleet executes as a few dozen kernel nodes.
//!
//! # Example
//!
//! Content-addressed randomness makes fleet declaration order
//! irrelevant — each node's results follow the node wherever it moves:
//!
//! ```
//! use tpv_core::runtime::run_topology;
//! use tpv_core::topology::{ClientNode, TopologySpec};
//! use tpv_hw::MachineConfig;
//! use tpv_loadgen::GeneratorSpec;
//! use tpv_net::LinkConfig;
//! use tpv_sim::SimDuration;
//!
//! let service = tpv_core::experiment::Benchmark::memcached().service;
//! let server = MachineConfig::server_baseline();
//! let gen = GeneratorSpec::mutilate();
//! let hp = ClientNode::new("hp", MachineConfig::high_performance(), gen, LinkConfig::cloudlab_lan(), 15_000.0);
//! let lp = ClientNode::new("lp", MachineConfig::low_power(), gen, LinkConfig::cloudlab_lan(), 15_000.0);
//! let run = |nodes: &[ClientNode]| {
//!     run_topology(&TopologySpec {
//!         service: &service,
//!         server: &server,
//!         nodes,
//!         duration: SimDuration::from_ms(15),
//!         warmup: SimDuration::from_ms(3),
//!         shards: None,
//!         cohorts: &[],
//!     }, 7)
//! };
//! let fwd = run(&[hp.clone(), lp.clone()]);
//! let rev = run(&[lp, hp]);
//! assert_eq!(fwd.nodes[0], rev.nodes[1]);
//! assert_eq!(fwd.nodes[1], rev.nodes[0]);
//! assert_eq!(fwd.aggregate, rev.aggregate);
//! ```

use std::borrow::Cow;
use std::fmt;

use tpv_hw::{DynamicMachine, MachineConfig};
use tpv_loadgen::{GeneratorSpec, LoopMode, PhasedRate};
use tpv_net::LinkConfig;
use tpv_services::ServiceConfig;
use tpv_sim::{PhaseSchedule, SimDuration, SimTime};

use crate::runtime::{RunResult, RunSpec};

/// Phase-scheduled, time-varying behaviour of one client node: at every
/// boundary of one shared [`PhaseSchedule`] the node's effective machine
/// configuration, its offered rate and/or its link may switch.
///
/// Everything is optional: a `NodeDynamics` with only a rate models
/// diurnal load on fixed hardware; only machines models turbo-budget
/// decay under steady load. A dynamics whose schedule is
/// [`PhaseSchedule::single`] (or whose per-phase values never change) is
/// behaviourally a static node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeDynamics {
    /// The boundaries at which this node's behaviour may switch.
    pub schedule: PhaseSchedule,
    /// Per-phase machine configuration (the node's
    /// [`ClientNode::machine`] is ignored when present). `None` = the
    /// machine is static.
    pub machine: Option<DynamicMachine>,
    /// Per-phase multiplier over the node's base [`ClientNode::qps`].
    /// `None` = constant load. Requires an open-loop generator — closed
    /// loops pace by think time, so a rate plan could not change the
    /// offered load it claims to (the runtime rejects the combination).
    pub rate: Option<PhasedRate>,
    /// Per-phase link configuration (one per phase; the node's
    /// [`ClientNode::link`] is ignored when present). `None` = the link
    /// is static.
    pub links: Option<Vec<LinkConfig>>,
}

impl NodeDynamics {
    /// Dynamics over `schedule` with nothing changing yet; chain the
    /// `with_*` builders to add time-varying aspects.
    pub fn new(schedule: PhaseSchedule) -> Self {
        NodeDynamics { schedule, machine: None, rate: None, links: None }
    }

    /// Sets one machine configuration per phase.
    ///
    /// # Panics
    ///
    /// Panics unless `configs.len()` matches the schedule's phase count.
    pub fn with_machines(mut self, configs: Vec<MachineConfig>) -> Self {
        self.machine = Some(DynamicMachine::new(self.schedule.clone(), configs));
        self
    }

    /// Sets a pre-built machine plan.
    ///
    /// # Panics
    ///
    /// Panics unless the plan follows this dynamics' schedule.
    pub fn with_machine_plan(mut self, plan: DynamicMachine) -> Self {
        assert_eq!(*plan.schedule(), self.schedule, "machine plan must follow the node's schedule");
        self.machine = Some(plan);
        self
    }

    /// Sets one rate multiplier per phase.
    ///
    /// # Panics
    ///
    /// Panics unless `multipliers.len()` matches the schedule's phase
    /// count and every multiplier is positive.
    pub fn with_rates(mut self, multipliers: Vec<f64>) -> Self {
        self.rate = Some(PhasedRate::new(self.schedule.clone(), multipliers));
        self
    }

    /// Sets a pre-built phased rate.
    ///
    /// # Panics
    ///
    /// Panics unless the rate follows this dynamics' schedule.
    pub fn with_rate_plan(mut self, rate: PhasedRate) -> Self {
        assert_eq!(*rate.schedule(), self.schedule, "rate plan must follow the node's schedule");
        self.rate = Some(rate);
        self
    }

    /// Sets one link configuration per phase.
    ///
    /// # Panics
    ///
    /// Panics unless `links.len()` matches the schedule's phase count.
    pub fn with_links(mut self, links: Vec<LinkConfig>) -> Self {
        assert_eq!(links.len(), self.schedule.phase_count(), "node dynamics needs one link per phase");
        self.links = Some(links);
        self
    }

    /// Checks the per-phase vectors against the schedule — the runtime
    /// calls this once per run so hand-assembled dynamics fail loudly.
    ///
    /// # Panics
    ///
    /// Panics on any phase-count mismatch.
    pub fn validate(&self) {
        let phases = self.schedule.phase_count();
        if let Some(machine) = &self.machine {
            assert_eq!(*machine.schedule(), self.schedule, "machine plan must follow the node's schedule");
        }
        if let Some(rate) = &self.rate {
            assert_eq!(*rate.schedule(), self.schedule, "rate plan must follow the node's schedule");
        }
        if let Some(links) = &self.links {
            assert_eq!(links.len(), phases, "node dynamics needs one link per phase");
        }
    }

    /// Time-weighted mean rate multiplier over `[start, end)` — `1.0`
    /// (exactly) when no rate plan is attached.
    pub fn mean_rate_multiplier(&self, start: SimTime, end: SimTime) -> f64 {
        match &self.rate {
            Some(rate) => rate.mean_multiplier(start, end),
            None => 1.0,
        }
    }

    /// These dynamics restricted to the window `[start, end)`, with the
    /// window's `start` re-anchored to `t = 0`. Every per-phase value —
    /// machine config, rate multiplier, link — is copied from the phase
    /// that covers the corresponding original instant, never recomputed,
    /// so a sliced plan replays the original timeline exactly. This is
    /// the seam segmented (windowed) execution rests on: the control loop
    /// in [`crate::control`] replays a long dynamic run one window at a
    /// time by handing each window the slice it would have lived under.
    ///
    /// # Panics
    ///
    /// Panics unless `start < end`.
    pub fn slice(&self, start: SimTime, end: SimTime) -> NodeDynamics {
        let schedule = self.schedule.slice(start, end);
        let links = self.links.as_ref().map(|links| {
            (0..schedule.phase_count())
                .map(|p| links[self.schedule.phase_at(start + schedule.phase_start(p).since(SimTime::ZERO))])
                .collect()
        });
        NodeDynamics {
            schedule,
            machine: self.machine.as_ref().map(|m| m.slice(start, end)),
            rate: self.rate.as_ref().map(|r| r.slice(start, end)),
            links,
        }
    }
}

/// One load-generating client machine of a topology.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientNode {
    /// Name used in per-node reports ("agent0", "bad1", …). Participates
    /// in the node's content identity: identically-configured replicas
    /// with distinct labels draw independent randomness.
    pub label: String,
    /// The node's hardware configuration — the paper's variable under
    /// study, now settable per fleet member. When [`ClientNode::dynamics`]
    /// carries a machine plan, that plan's per-phase configurations are
    /// in effect instead.
    pub machine: MachineConfig,
    /// The generator deployment running on this node.
    pub generator: GeneratorSpec,
    /// The network path from this node to the server (per-pair: nodes on
    /// another rack model a longer path via
    /// [`tpv_net::LinkConfig::cross_rack`]). When [`ClientNode::dynamics`]
    /// carries per-phase links, those are in effect instead.
    pub link: LinkConfig,
    /// Offered load from this node, in queries per second (scaled per
    /// phase by [`ClientNode::dynamics`]' rate plan when present).
    pub qps: f64,
    /// Phase-scheduled time-varying behaviour. `None` — the common case —
    /// is a fully static node, bit-identical to the pre-phase testbed.
    pub dynamics: Option<NodeDynamics>,
}

impl ClientNode {
    /// A static node with every knob explicit.
    pub fn new(
        label: impl Into<String>,
        machine: MachineConfig,
        generator: GeneratorSpec,
        link: LinkConfig,
        qps: f64,
    ) -> Self {
        ClientNode { label: label.into(), machine, generator, link, qps, dynamics: None }
    }

    /// Returns a copy with phase-scheduled dynamics attached. The
    /// dynamics participate in the node's content identity, so a dynamic
    /// node and its static twin draw independent randomness.
    pub fn with_dynamics(mut self, dynamics: NodeDynamics) -> Self {
        self.dynamics = Some(dynamics);
        self
    }

    /// Stable content hash of this node (label, machine, generator, link,
    /// load and dynamics) — the basis of its content-addressed
    /// randomness.
    pub fn content_key(&self) -> u64 {
        crate::engine::fnv64_debug(self)
    }

    /// The machine configuration in effect at the start of a run: phase 0
    /// of the dynamics' machine plan when present, the static
    /// [`ClientNode::machine`] otherwise.
    pub fn initial_machine(&self) -> &MachineConfig {
        self.dynamics.as_ref().and_then(|dy| dy.machine.as_ref()).map_or(&self.machine, |plan| plan.config(0))
    }
}

/// A compressed population of identically-configured client nodes.
///
/// ConfigTron-style fleets cluster into a modest number of
/// (machine × generator × link × load) classes. Instead of declaring a
/// million [`ClientNode`]s, a cohort declares the class **template**
/// once plus a `population`. The runtime *lowers* the cohort into:
///
/// * `tracked` exact copies of the template — ordinary nodes with
///   today's content-addressed per-node streams, whose client-side
///   wake/idle behaviour is exact — for per-client drill-down;
/// * one **pooled** node carrying the remaining `population - tracked`
///   members as a single superposed arrival process at
///   `(population - tracked) × qps`. Superposing independent Poisson
///   streams is exact for exponential arrivals (and an approximation
///   for other [`tpv_loadgen::ArrivalKind`]s); the pooled node keeps
///   the template's connection count, so memory and per-event cost stay
///   flat in `population`.
///
/// The pooled node models *offered load and server-side pressure*
/// exactly, but its client-side hardware state is one representative
/// machine driven at the pooled rate — it stays warm and never observes
/// the long-idle wake tails an isolated low-rate client would. Use
/// `tracked` representatives to measure those.
///
/// A cohort of `population: 1` with no tracked members lowers to the
/// template times a rate multiplier of exactly `1.0`, which is
/// bit-exact: it is indistinguishable from declaring the
/// [`ClientNode`] explicitly (pinned by `GOLDEN_COHORT` in
/// `tests/golden_runtime.rs`).
#[derive(Debug, Clone, PartialEq)]
pub struct CohortSpec {
    /// The configuration class every member shares.
    pub node: ClientNode,
    /// Number of modeled clients in this cohort (at least 1).
    pub population: u32,
    /// How many members to simulate as exact per-node replicas
    /// (at most `population`).
    pub tracked: u32,
}

impl CohortSpec {
    /// A cohort of `population` members of the `node` class, none
    /// tracked.
    pub fn new(node: ClientNode, population: u32) -> Self {
        CohortSpec { node, population, tracked: 0 }
    }

    /// Returns a copy tracking `tracked` members as exact replicas.
    pub fn with_tracked(mut self, tracked: u32) -> Self {
        self.tracked = tracked;
        self
    }

    /// Members simulated by the pooled superposed-arrival node.
    pub fn pooled(&self) -> u32 {
        self.population.saturating_sub(self.tracked)
    }
}

/// A structurally invalid [`TopologySpec`], reported by
/// [`TopologySpec::validate`]. Misconfiguration surfaces as a value the
/// caller can log and move past (`all_experiments` keeps its suite
/// alive) instead of a mid-suite abort; the runtime entry points bridge
/// `Err` back into a panic carrying this error's message, which
/// preserves the historical panic pins.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyError {
    /// No client nodes and no cohorts.
    EmptyFleet,
    /// The lowered fleet exceeds the kernel's `u16` node-index width.
    TooManyNodes {
        /// Lowered node count (explicit nodes + tracked + pooled).
        lowered: usize,
    },
    /// A node (or cohort template) offers no load.
    NonPositiveQps {
        /// The offending node's label.
        label: String,
        /// Its configured load.
        qps: f64,
    },
    /// A node's phase schedule exceeds the kernel's `u16` phase-index
    /// width.
    TooManyPhases {
        /// The offending node's label.
        label: String,
        /// Its schedule's phase count.
        phases: usize,
    },
    /// A phased rate plan on a closed-loop generator: closed loops pace
    /// by think time, so the plan could not change the offered load it
    /// claims to.
    PhasedRateClosedLoop {
        /// The offending node's label.
        label: String,
    },
    /// A phased rate multiplier that is not finite and positive — NaN
    /// or an infinity would poison [`TopologySpec::offered_qps`] (and
    /// every mean-multiplier fold) silently, a non-positive one models
    /// no load. Constructors reject these, but a deserialized or
    /// hand-assembled plan bypasses them.
    NonFinitePhaseRate {
        /// The offending node's label.
        label: String,
        /// The phase whose multiplier is invalid.
        phase: usize,
        /// The rejected multiplier.
        multiplier: f64,
    },
    /// `warmup >= duration` leaves no measurement window.
    EmptyWindow {
        /// The configured warmup.
        warmup: SimDuration,
        /// The configured run duration (which the warmup must undercut).
        duration: SimDuration,
    },
    /// A cohort with `population == 0`.
    EmptyCohort {
        /// The cohort template's label.
        label: String,
    },
    /// A cohort tracking more members than its population.
    TrackedExceedsPopulation {
        /// The cohort template's label.
        label: String,
        /// Requested tracked members.
        tracked: u32,
        /// The cohort's population.
        population: u32,
    },
    /// A cohort pooling closed-loop members: superposed arrivals model
    /// open-loop load, while a closed loop's rate is set by think time
    /// and connection count.
    PooledClosedLoop {
        /// The cohort template's label.
        label: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::EmptyFleet => write!(f, "topology needs at least one client node"),
            TopologyError::TooManyNodes { lowered } => {
                write!(f, "topology exceeds {} nodes (lowered fleet has {lowered})", u16::MAX)
            }
            TopologyError::NonPositiveQps { label, qps } => {
                write!(f, "node '{label}': offered load must be positive, got {qps}")
            }
            TopologyError::TooManyPhases { label, phases } => {
                write!(f, "node '{label}': {phases} phases exceeds the kernel's limit of {}", u16::MAX)
            }
            TopologyError::PhasedRateClosedLoop { label } => write!(
                f,
                "node '{label}': phased rates require an open-loop generator (closed loops pace by think time)"
            ),
            TopologyError::NonFinitePhaseRate { label, phase, multiplier } => write!(
                f,
                "node '{label}': phase {phase} rate multiplier must be finite and positive, got {multiplier}"
            ),
            TopologyError::EmptyWindow { warmup, duration } => write!(
                f,
                "warmup must be shorter than the run, got warmup {warmup} >= duration {duration}"
            ),
            TopologyError::EmptyCohort { label } => {
                write!(f, "cohort '{label}' needs a population of at least one")
            }
            TopologyError::TrackedExceedsPopulation { label, tracked, population } => {
                write!(f, "cohort '{label}' tracks {tracked} members but has a population of {population}")
            }
            TopologyError::PooledClosedLoop { label } => write!(
                f,
                "cohort '{label}': pooled members require an open-loop generator (closed loops pace by \
                 think time, which superposed arrivals cannot model); track every member instead"
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Where a lowered node came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NodeOrigin {
    /// Declared explicitly in [`TopologySpec::nodes`].
    Explicit(usize),
    /// Tracked replica `member` of cohort `cohort`.
    Tracked {
        /// Cohort declaration index.
        cohort: usize,
        /// Member index within the cohort's tracked set.
        member: u32,
    },
    /// The pooled remainder of cohort `cohort`.
    Pooled {
        /// Cohort declaration index.
        cohort: usize,
        /// Members carried by the superposed arrival process.
        members: u32,
    },
}

/// The lowered fleet of a topology: explicit nodes first, then each
/// cohort's tracked replicas and pooled node, in declaration order.
/// Borrows the declared slice untouched when there are no cohorts, so
/// the common path allocates nothing.
pub(crate) struct FleetLayout<'a> {
    nodes: Cow<'a, [ClientNode]>,
    /// Origin per lowered node; `None` when the topology has no cohorts
    /// (every lowered node is explicit).
    origins: Option<Vec<NodeOrigin>>,
}

impl FleetLayout<'_> {
    /// The lowered nodes the kernel executes.
    pub(crate) fn nodes(&self) -> &[ClientNode] {
        &self.nodes
    }

    /// Lowered node count.
    pub(crate) fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Origin of lowered node `i`.
    pub(crate) fn origin(&self, i: usize) -> NodeOrigin {
        match &self.origins {
            Some(origins) => origins[i],
            None => NodeOrigin::Explicit(i),
        }
    }

    /// Display label of lowered node `i`: the declared label for
    /// explicit nodes, `label#k` for tracked cohort members,
    /// `label#pooled(n)` for a pooled remainder. Display only — content
    /// keys (and therefore RNG streams) use the [`ClientNode`] itself.
    pub(crate) fn display_label(&self, i: usize) -> String {
        match self.origin(i) {
            NodeOrigin::Explicit(_) => self.nodes[i].label.clone(),
            NodeOrigin::Tracked { member, .. } => format!("{}#{member}", self.nodes[i].label),
            NodeOrigin::Pooled { members, .. } => format!("{}#pooled({members})", self.nodes[i].label),
        }
    }

    /// Lowered node index → owning cohort (`None` for explicit nodes) —
    /// the attribution map [`crate::collect::PerCohortCollector`] is
    /// built from.
    pub(crate) fn cohort_map(&self) -> Vec<Option<usize>> {
        (0..self.len())
            .map(|i| match self.origin(i) {
                NodeOrigin::Explicit(_) => None,
                NodeOrigin::Tracked { cohort, .. } | NodeOrigin::Pooled { cohort, .. } => Some(cohort),
            })
            .collect()
    }
}

/// Splits one deployment into `count` client nodes that together
/// preserve the original's total connection count and offered load:
/// connections divide as evenly as possible (the first
/// `connections % count` nodes carry one extra) and each node's load is
/// proportional to its connection share, so the per-connection request
/// rate — and therefore the workload being split — is unchanged. Labels
/// are `prefix0..prefixN`.
///
/// Degenerate splits (`count > connections`) clamp every node to one
/// connection, *growing* the total — at that point the fleet is a
/// different deployment, not a split of the original.
///
/// # Panics
///
/// Panics if `count` is zero.
pub fn uniform_fleet(
    prefix: &str,
    machine: MachineConfig,
    generator: GeneratorSpec,
    link: LinkConfig,
    total_qps: f64,
    count: usize,
) -> Vec<ClientNode> {
    assert!(count > 0, "a fleet needs at least one node");
    let conns = generator.connections.max(1);
    let base = conns / count as u32;
    let extra = (conns % count as u32) as usize;
    let total: f64 = (0..count).map(|i| base + u32::from(i < extra)).map(|c| c.max(1) as f64).sum();
    (0..count)
        .map(|i| {
            let node_conns = (base + u32::from(i < extra)).max(1);
            ClientNode::new(
                format!("{prefix}{i}"),
                machine,
                generator.with_connections(node_conns),
                link,
                total_qps * node_conns as f64 / total,
            )
        })
        .collect()
}

/// How client nodes map onto the server shards of a [`ShardSpec`].
///
/// Assignment is a pure function of the node's *declaration index* and
/// the fleet/shard counts — deterministic and reproducible from the spec
/// alone. [`ShardPolicy::Explicit`] exists for tests and replays where
/// the mapping itself is the variable under study.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardPolicy {
    /// Node `i` lands on shard `i mod K` — the uniform interleave.
    RoundRobin,
    /// Contiguous equal ranges: node `i` lands on shard `i * K / N`.
    Range,
    /// The skewed policy: the first `ceil(share * N)` nodes (at least
    /// one) land on shard `hot`; the remainder round-robin across the
    /// other shards in index order. Models an overloaded backend behind
    /// an imbalanced router.
    HotShard {
        /// Index of the overloaded shard.
        hot: usize,
        /// Fraction of the fleet routed to it, in `(0, 1]`.
        share: f64,
    },
    /// `assignment[i]` is node `i`'s shard.
    Explicit(Vec<usize>),
}

/// The server tier of a sharded topology: `K` backend shards, each a
/// full machine running its own service instance, plus the deterministic
/// node→shard assignment. Shards share no mutable state — every shard
/// has its own worker queues, key space and interference draws — which
/// is what lets the kernel execute them as independent sub-simulations
/// (see `tpv_core::runtime::run_topology_sharded`).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSpec {
    /// One server machine configuration per shard.
    pub machines: Vec<MachineConfig>,
    /// The node→shard assignment policy.
    pub policy: ShardPolicy,
}

impl ShardSpec {
    /// `count` identical shards with round-robin assignment.
    pub fn uniform(machine: MachineConfig, count: usize) -> Self {
        assert!(count > 0, "a server tier needs at least one shard");
        ShardSpec { machines: vec![machine; count], policy: ShardPolicy::RoundRobin }
    }

    /// Returns a copy with the given assignment policy.
    pub fn with_policy(mut self, policy: ShardPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of shards.
    pub fn count(&self) -> usize {
        self.machines.len()
    }

    /// Checks the spec against a fleet of `nodes` client nodes.
    ///
    /// # Panics
    ///
    /// Panics on an empty tier, an out-of-range [`ShardPolicy::HotShard`]
    /// or a malformed [`ShardPolicy::Explicit`] assignment.
    pub fn validate(&self, nodes: usize) {
        assert!(!self.machines.is_empty(), "a server tier needs at least one shard");
        match &self.policy {
            ShardPolicy::RoundRobin | ShardPolicy::Range => {}
            ShardPolicy::HotShard { hot, share } => {
                assert!(*hot < self.count(), "hot shard {hot} out of range (K = {})", self.count());
                assert!(
                    *share > 0.0 && *share <= 1.0 && share.is_finite(),
                    "hot-shard share must be in (0, 1], got {share}"
                );
            }
            ShardPolicy::Explicit(assignment) => {
                assert_eq!(assignment.len(), nodes, "explicit assignment needs one shard per node");
                for (i, &s) in assignment.iter().enumerate() {
                    assert!(s < self.count(), "node {i} assigned to shard {s} of {}", self.count());
                }
            }
        }
    }

    /// The node→shard assignment for a fleet of `nodes` client nodes, in
    /// node declaration order.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`ShardSpec::validate`].
    pub fn assign(&self, nodes: usize) -> Vec<usize> {
        self.validate(nodes);
        let k = self.count();
        match &self.policy {
            ShardPolicy::RoundRobin => (0..nodes).map(|i| i % k).collect(),
            ShardPolicy::Range => (0..nodes).map(|i| i * k / nodes.max(1)).collect(),
            ShardPolicy::HotShard { hot, share } => {
                let hot_nodes = ((share * nodes as f64).ceil() as usize).clamp(1, nodes);
                let cold: Vec<usize> = (0..k).filter(|s| s != hot).collect();
                (0..nodes)
                    .map(|i| {
                        if i < hot_nodes || cold.is_empty() {
                            *hot
                        } else {
                            cold[(i - hot_nodes) % cold.len()]
                        }
                    })
                    .collect()
            }
            ShardPolicy::Explicit(assignment) => assignment.clone(),
        }
    }
}

/// Everything needed to execute one run of a topology: the server tier
/// plus any number of client nodes.
#[derive(Debug, Clone, Copy)]
pub struct TopologySpec<'a> {
    /// The benchmark service and its interference profile.
    pub service: &'a ServiceConfig,
    /// Server machine configuration of the single-tier case (exactly one
    /// backend, every node's requests land on it). Ignored when
    /// [`TopologySpec::shards`] is set — the shard spec then defines the
    /// whole server tier, machine configurations included.
    pub server: &'a MachineConfig,
    /// The client fleet. One node is the paper's testbed; the order of
    /// declaration cannot influence any node's results.
    pub nodes: &'a [ClientNode],
    /// Measured run length.
    pub duration: SimDuration,
    /// Leading portion of the run excluded from measurement.
    pub warmup: SimDuration,
    /// Sharded server tier. `None` — the common case — is the single
    /// shared tier; `Some` with one shard is the same topology with the
    /// shard's machine as the server (bit-identical to the unsharded
    /// kernel); `Some` with `K > 1` partitions the run into independent
    /// per-shard sub-simulations.
    pub shards: Option<&'a ShardSpec>,
    /// Cohort-compressed client populations, lowered next to
    /// [`TopologySpec::nodes`] at run time (explicit nodes first, then
    /// each cohort's tracked replicas and pooled node in declaration
    /// order). Empty — the common case — means the fleet is exactly
    /// `nodes`.
    pub cohorts: &'a [CohortSpec],
}

/// Order-independent f64 accumulation: float addition is not
/// associative, so naively summing per-node values in declaration order
/// would leak the fleet's declaration order into aggregate results.
/// Summing in sorted order makes the total a function of the value
/// *multiset*. A single value sums to itself bit-exactly.
pub(crate) fn stable_sum(mut values: Vec<f64>) -> f64 {
    values.sort_by(f64::total_cmp);
    values.iter().sum()
}

impl TopologySpec<'_> {
    /// Lowers the cohorts into the flat node list the kernel executes:
    /// explicit nodes first, then per cohort (in declaration order) its
    /// tracked replicas followed by one pooled node whose load is the
    /// Poisson superposition of the untracked members. Lowered nodes
    /// draw their RNG streams from the same content-addressed keys as
    /// explicit nodes, so cohort declaration order is presentation, not
    /// physics.
    pub(crate) fn layout(&self) -> FleetLayout<'_> {
        if self.cohorts.is_empty() {
            return FleetLayout { nodes: Cow::Borrowed(self.nodes), origins: None };
        }
        let mut nodes = self.nodes.to_vec();
        let mut origins: Vec<NodeOrigin> = (0..self.nodes.len()).map(NodeOrigin::Explicit).collect();
        for (c, cohort) in self.cohorts.iter().enumerate() {
            let tracked = cohort.tracked.min(cohort.population);
            for member in 0..tracked {
                nodes.push(cohort.node.clone());
                origins.push(NodeOrigin::Tracked { cohort: c, member });
            }
            let pooled = cohort.population - tracked;
            if pooled > 0 {
                let mut node = cohort.node.clone();
                // Poisson superposition: pooling n independent members
                // is one arrival process at n× the rate. n = 1
                // multiplies by exactly 1.0, which is bit-exact — a
                // population-one cohort *is* its explicit node.
                node.qps = cohort.node.qps * f64::from(pooled);
                nodes.push(node);
                origins.push(NodeOrigin::Pooled { cohort: c, members: pooled });
            }
        }
        FleetLayout { nodes: Cow::Owned(nodes), origins: Some(origins) }
    }

    /// Checks the spec structurally, reporting misconfiguration as a
    /// typed [`TopologyError`] a caller can surface without aborting.
    /// The runtime entry points call this and panic on `Err` with the
    /// error's message.
    ///
    /// # Panics
    ///
    /// Panics (rather than returning `Err`) on malformed hand-assembled
    /// *plans* — phase-count mismatches inside a [`NodeDynamics`] and
    /// malformed [`ShardSpec`] assignments — which are programming
    /// errors, not experiment configuration.
    pub fn validate(&self) -> Result<(), TopologyError> {
        if self.nodes.is_empty() && self.cohorts.is_empty() {
            return Err(TopologyError::EmptyFleet);
        }
        for cohort in self.cohorts {
            if cohort.population == 0 {
                return Err(TopologyError::EmptyCohort { label: cohort.node.label.clone() });
            }
            if cohort.tracked > cohort.population {
                return Err(TopologyError::TrackedExceedsPopulation {
                    label: cohort.node.label.clone(),
                    tracked: cohort.tracked,
                    population: cohort.population,
                });
            }
            if cohort.pooled() > 0 && cohort.node.generator.loop_mode != LoopMode::Open {
                return Err(TopologyError::PooledClosedLoop { label: cohort.node.label.clone() });
            }
        }
        let layout = self.layout();
        if layout.len() > u16::MAX as usize {
            return Err(TopologyError::TooManyNodes { lowered: layout.len() });
        }
        for node in layout.nodes() {
            if node.qps <= 0.0 || node.qps.is_nan() {
                return Err(TopologyError::NonPositiveQps { label: node.label.clone(), qps: node.qps });
            }
            if let Some(dy) = &node.dynamics {
                dy.validate();
                if dy.schedule.phase_count() > u16::MAX as usize {
                    return Err(TopologyError::TooManyPhases {
                        label: node.label.clone(),
                        phases: dy.schedule.phase_count(),
                    });
                }
                // Closed loops pace by think time, not the arrival
                // process a rate plan rebuilds — a phased rate there
                // would change the reported target without changing the
                // offered load.
                if dy.rate.is_some() && node.generator.loop_mode != LoopMode::Open {
                    return Err(TopologyError::PhasedRateClosedLoop { label: node.label.clone() });
                }
                // `PhasedRate::new` rejects these, but a deserialized or
                // hand-assembled plan bypasses it — and one NaN
                // multiplier poisons `offered_qps` and every
                // mean-multiplier fold silently.
                if let Some(rate) = &dy.rate {
                    for phase in 0..rate.schedule().phase_count() {
                        let multiplier = rate.multiplier(phase);
                        if !multiplier.is_finite() || multiplier <= 0.0 {
                            return Err(TopologyError::NonFinitePhaseRate {
                                label: node.label.clone(),
                                phase,
                                multiplier,
                            });
                        }
                    }
                }
            }
        }
        if self.warmup >= self.duration {
            return Err(TopologyError::EmptyWindow { warmup: self.warmup, duration: self.duration });
        }
        if let Some(shards) = self.shards {
            shards.validate(layout.len());
        }
        Ok(())
    }

    /// Number of kernel-executed nodes after cohort lowering.
    pub fn lowered_node_count(&self) -> usize {
        self.layout().len()
    }

    /// Number of *modeled* clients: explicit nodes plus every cohort
    /// member. The kernel's memory and per-event cost scale with
    /// [`TopologySpec::lowered_node_count`], not with this.
    pub fn modeled_clients(&self) -> u64 {
        self.nodes.len() as u64 + self.cohorts.iter().map(|c| u64::from(c.population)).sum::<u64>()
    }

    /// Total *base* offered load across the (lowered) fleet
    /// (order-independent), ignoring any phased rate plans. Cohorts
    /// contribute `population × qps`.
    pub fn total_qps(&self) -> f64 {
        stable_sum(self.layout().nodes().iter().map(|n| n.qps).collect())
    }

    /// Effective offered load across the fleet over the measurement
    /// window: each lowered node's base load weighted by its
    /// time-averaged rate multiplier. Bit-identical to
    /// [`TopologySpec::total_qps`] when no node carries a rate plan.
    pub fn offered_qps(&self) -> f64 {
        let start = SimTime::ZERO + self.warmup;
        let end = SimTime::ZERO + self.duration;
        stable_sum(
            self.layout()
                .nodes()
                .iter()
                .map(|n| match &n.dynamics {
                    Some(dy) => n.qps * dy.mean_rate_multiplier(start, end),
                    None => n.qps,
                })
                .collect(),
        )
    }

    /// Total connections across the lowered fleet — flat in cohort
    /// populations (each cohort costs `(tracked + 1) ×` its template's
    /// connections at most).
    pub fn total_connections(&self) -> u32 {
        self.layout().nodes().iter().map(|n| n.generator.connections.max(1)).sum()
    }

    /// The union of every node's phase boundaries — the finest schedule
    /// against which per-phase metrics of this topology are well defined.
    /// The single all-covering phase when no node is dynamic.
    pub fn merged_schedule(&self) -> PhaseSchedule {
        self.layout()
            .nodes()
            .iter()
            .filter_map(|n| n.dynamics.as_ref())
            .fold(PhaseSchedule::single(), |acc, dy| acc.merged(&dy.schedule))
    }

    /// Number of server shards (1 for the single-tier case).
    pub fn shard_count(&self) -> usize {
        self.shards.map_or(1, ShardSpec::count)
    }

    /// The node→shard assignment in lowered node order (all zeros for
    /// the single-tier case).
    pub fn shard_assignment(&self) -> Vec<usize> {
        let lowered = self.layout().len();
        match self.shards {
            Some(s) => s.assign(lowered),
            None => vec![0; lowered],
        }
    }
}

impl RunSpec<'_> {
    /// The single [`ClientNode`] equivalent to this spec's client side —
    /// `run_once` is exactly the 1×1 topology built from it.
    pub fn client_node(&self) -> ClientNode {
        ClientNode::new(self.client.label(), *self.client, *self.generator, *self.link, self.qps)
    }
}

/// Per-node RNG stream keys: each node's randomness forks off the master
/// seed under this key, so streams depend on node **content** (including
/// the label), never on declaration order. Identical nodes (same label
/// *and* configuration) are disambiguated by replica index so they still
/// behave as independent machines rather than perfectly correlated
/// clones.
pub(crate) fn node_stream_keys(nodes: &[ClientNode]) -> Vec<u64> {
    let mut keys: Vec<u64> = nodes.iter().map(ClientNode::content_key).collect();
    disambiguate_replicas(&mut keys);
    keys
}

/// Remixes repeated content keys in place so the `n`-th replica of a
/// content gets a stable key of its own: identical entries behave as
/// independent machines rather than perfectly correlated clones, while
/// the key of content's first appearance is the content key itself.
fn disambiguate_replicas(keys: &mut [u64]) {
    let mut seen: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for key in keys {
        let replica = seen.entry(*key).or_insert(0);
        if *replica > 0 {
            // splitmix-style remix keeps replicas well separated from
            // every other content key.
            let mixed = (*key ^ replica.wrapping_mul(0x9e37_79b9_7f4a_7c15)).rotate_left(23);
            *key = mixed.wrapping_mul(0xbf58_476d_1ce4_e5b9) | 1;
        }
        *replica += 1;
    }
}

/// Per-shard RNG stream keys: each shard's service and server-environment
/// randomness forks off the master seed under this key, so shard streams
/// depend on what the shard *is* (its machine configuration), never on
/// its enumeration index — permuting distinct shards (with their
/// assignments) cannot change any shard's results. Identical shard
/// machines are replica-disambiguated exactly like identical client
/// nodes. The `"shard"` salt keeps these keys out of the node-stream key
/// space even when a client and a shard share a machine configuration.
pub(crate) fn shard_stream_keys(machines: &[MachineConfig]) -> Vec<u64> {
    let mut keys: Vec<u64> = machines.iter().map(|m| crate::engine::fnv64_debug(&("shard", m))).collect();
    disambiguate_replicas(&mut keys);
    keys
}

/// The measurements of one client node over a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeResult {
    /// The node's label, copied from its [`ClientNode`].
    pub label: String,
    /// The node's own measurements: latency distribution of *its*
    /// requests, *its* schedule fidelity, wakes and energy — the same
    /// shape as a single-client run's result.
    pub result: RunResult,
}

/// The measurements of one fleet run: the aggregate the experimenter
/// would naively report, plus the per-node breakdown that reveals which
/// clients skewed it.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetResult {
    /// Fleet-wide measurements (all nodes' requests pooled, counters
    /// summed) — identical in shape to a single-client [`RunResult`].
    pub aggregate: RunResult,
    /// Per-node breakdowns, in node declaration order.
    pub nodes: Vec<NodeResult>,
}

/// The measurements of one server shard over a sharded fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardResult {
    /// Shard index in the [`ShardSpec`]'s declaration order.
    pub shard: usize,
    /// Pooled measurements over the shard's assigned nodes — the same
    /// shape as a fleet aggregate, restricted to this backend. A shard
    /// with no assigned nodes reports an empty result (zero samples).
    pub result: RunResult,
    /// Declaration indices of the client nodes assigned to this shard.
    pub nodes: Vec<usize>,
}

/// The measurements of one sharded fleet run: the fleet view (aggregate
/// plus per-node breakdowns, identical in shape to
/// [`crate::runtime::run_topology`]'s result) next to the per-shard
/// breakdown that reveals backend imbalance.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedFleetResult {
    /// Whole-run fleet view.
    pub fleet: FleetResult,
    /// Per-shard breakdowns, in shard declaration order.
    pub shards: Vec<ShardResult>,
}

impl ShardedFleetResult {
    /// The largest per-shard p99 — the hottest backend's tail.
    pub fn worst_shard_p99(&self) -> SimDuration {
        self.shards.iter().map(|s| s.result.p99).max().unwrap_or(SimDuration::ZERO)
    }

    /// The smallest per-shard p99 among shards that served requests.
    pub fn best_shard_p99(&self) -> SimDuration {
        self.shards
            .iter()
            .filter(|s| s.result.samples > 0)
            .map(|s| s.result.p99)
            .min()
            .unwrap_or(SimDuration::ZERO)
    }
}

/// The measurements of one cohort over a cohorted fleet run: every
/// lowered node of the cohort (tracked replicas plus the pooled
/// remainder) pooled into one distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortResult {
    /// The cohort template's label.
    pub label: String,
    /// Modeled members.
    pub population: u32,
    /// Members simulated as exact per-node replicas.
    pub tracked: u32,
    /// Pooled measurements over the cohort's lowered nodes.
    pub result: RunResult,
}

/// The measurements of one cohorted fleet run: the fleet view over the
/// *lowered* nodes, the per-shard breakdown, and the per-cohort rollup.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortedFleetResult {
    /// Whole-run fleet view over the lowered nodes. Tracked members are
    /// labelled `label#k` and pooled nodes `label#pooled(n)`; explicit
    /// nodes keep their declared labels.
    pub fleet: FleetResult,
    /// Per-shard breakdowns, in shard declaration order (one entry for
    /// the single-tier case).
    pub shards: Vec<ShardResult>,
    /// Per-cohort rollups, in cohort declaration order.
    pub cohorts: Vec<CohortResult>,
}

impl CohortedFleetResult {
    /// The rollup for the cohort whose template is labelled `label`.
    pub fn cohort(&self, label: &str) -> Option<&CohortResult> {
        self.cohorts.iter().find(|c| c.label == label)
    }

    /// The largest per-cohort p99 — the straggler class's tail.
    pub fn worst_cohort_p99(&self) -> SimDuration {
        self.cohorts.iter().map(|c| c.result.p99).max().unwrap_or(SimDuration::ZERO)
    }

    /// The smallest per-cohort p99 among cohorts that recorded samples.
    pub fn best_cohort_p99(&self) -> SimDuration {
        self.cohorts
            .iter()
            .filter(|c| c.result.samples > 0)
            .map(|c| c.result.p99)
            .min()
            .unwrap_or(SimDuration::ZERO)
    }
}

impl FleetResult {
    /// The breakdown for the node labelled `label`.
    pub fn node(&self, label: &str) -> Option<&NodeResult> {
        self.nodes.iter().find(|n| n.label == label)
    }

    /// The largest per-node p99 — the straggler client's tail.
    pub fn worst_node_p99(&self) -> SimDuration {
        self.nodes.iter().map(|n| n.result.p99).max().unwrap_or(SimDuration::ZERO)
    }

    /// The smallest per-node p99.
    pub fn best_node_p99(&self) -> SimDuration {
        self.nodes.iter().map(|n| n.result.p99).min().unwrap_or(SimDuration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpv_net::LinkConfig;

    fn node(label: &str, qps: f64) -> ClientNode {
        ClientNode::new(
            label,
            MachineConfig::high_performance(),
            GeneratorSpec::mutilate(),
            LinkConfig::cloudlab_lan(),
            qps,
        )
    }

    #[test]
    fn content_keys_depend_on_content_not_position() {
        let a = node("a", 1000.0);
        let b = node("b", 1000.0);
        assert_ne!(a.content_key(), b.content_key(), "labels are content");
        assert_eq!(a.content_key(), node("a", 1000.0).content_key());
        assert_eq!(node_stream_keys(&[a.clone(), b.clone()])[0], node_stream_keys(&[b, a])[1]);
    }

    #[test]
    fn replica_keys_are_distinct_but_order_symmetric() {
        let n = node("same", 500.0);
        let keys = node_stream_keys(&[n.clone(), n.clone(), n.clone()]);
        assert_eq!(keys.len(), 3);
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[1], keys[2]);
        assert_ne!(keys[0], keys[2]);
        assert_eq!(keys[0], n.content_key(), "first replica keeps the content key");
    }

    #[test]
    fn uniform_fleet_splits_load_and_connections() {
        let fleet = uniform_fleet(
            "agent",
            MachineConfig::high_performance(),
            GeneratorSpec::mutilate(),
            LinkConfig::cloudlab_lan(),
            100_000.0,
            4,
        );
        assert_eq!(fleet.len(), 4);
        assert_eq!(fleet[0].label, "agent0");
        assert_eq!(fleet[3].label, "agent3");
        assert!(fleet.iter().all(|n| n.qps == 25_000.0));
        assert!(fleet.iter().all(|n| n.generator.connections == 40));
        // Non-divisor split preserves the total connection count and load.
        let uneven = uniform_fleet(
            "u",
            MachineConfig::high_performance(),
            GeneratorSpec::mutilate(),
            LinkConfig::cloudlab_lan(),
            90_000.0,
            3,
        );
        let conns: Vec<u32> = uneven.iter().map(|n| n.generator.connections).collect();
        assert_eq!(conns, vec![54, 53, 53]);
        assert_eq!(conns.iter().sum::<u32>(), 160);
        let qps_total: f64 = uneven.iter().map(|n| n.qps).sum();
        assert!((qps_total - 90_000.0).abs() < 1e-6, "load must be preserved: {qps_total}");
        // Per-connection rate is uniform across nodes.
        let rate0 = uneven[0].qps / uneven[0].generator.connections as f64;
        for n in &uneven {
            assert!((n.qps / n.generator.connections as f64 - rate0).abs() < 1e-9);
        }
        // Degenerate split: more nodes than connections clamps to 1 each.
        let wide = uniform_fleet(
            "w",
            MachineConfig::high_performance(),
            GeneratorSpec::wrk2(),
            LinkConfig::cloudlab_lan(),
            1_000.0,
            32,
        );
        assert!(wide.iter().all(|n| n.generator.connections == 1));
    }

    #[test]
    fn shard_policies_assign_deterministically() {
        let spec = ShardSpec::uniform(MachineConfig::server_baseline(), 4);
        assert_eq!(spec.assign(8), vec![0, 1, 2, 3, 0, 1, 2, 3]);
        let range = spec.clone().with_policy(ShardPolicy::Range);
        assert_eq!(range.assign(8), vec![0, 0, 1, 1, 2, 2, 3, 3]);
        // Hot shard takes ceil(share * N) leading nodes; the rest
        // round-robin over the remaining shards.
        let hot = spec.clone().with_policy(ShardPolicy::HotShard { hot: 1, share: 0.5 });
        assert_eq!(hot.assign(8), vec![1, 1, 1, 1, 0, 2, 3, 0]);
        let explicit = spec.with_policy(ShardPolicy::Explicit(vec![3, 3, 0, 0]));
        assert_eq!(explicit.assign(4), vec![3, 3, 0, 0]);
        // A single hot shard degenerates to "everything on it".
        let solo = ShardSpec::uniform(MachineConfig::server_baseline(), 1)
            .with_policy(ShardPolicy::HotShard { hot: 0, share: 0.25 });
        assert_eq!(solo.assign(3), vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "one shard per node")]
    fn explicit_assignment_length_is_checked() {
        ShardSpec::uniform(MachineConfig::server_baseline(), 2)
            .with_policy(ShardPolicy::Explicit(vec![0]))
            .assign(2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hot_shard_index_is_checked() {
        ShardSpec::uniform(MachineConfig::server_baseline(), 2)
            .with_policy(ShardPolicy::HotShard { hot: 2, share: 0.5 })
            .assign(4);
    }

    #[test]
    fn shard_keys_are_content_addressed_and_salted() {
        let base = MachineConfig::server_baseline();
        let hp = MachineConfig::high_performance();
        let keys = shard_stream_keys(&[base, hp, base]);
        assert_ne!(keys[0], keys[1], "distinct machines get distinct shard keys");
        assert_ne!(keys[0], keys[2], "replica shards are disambiguated");
        // Enumeration-order symmetry for distinct content.
        let swapped = shard_stream_keys(&[hp, base, base]);
        assert_eq!(keys[1], swapped[0]);
        assert_eq!(keys[0], swapped[1]);
        // The salt keeps shard keys out of the node-key space: a node
        // whose whole content is the machine config alone cannot collide
        // by construction, but the key derivations must stay distinct.
        assert_ne!(keys[0], crate::engine::fnv64_debug(&base));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_fleet_panics() {
        uniform_fleet(
            "x",
            MachineConfig::high_performance(),
            GeneratorSpec::mutilate(),
            LinkConfig::cloudlab_lan(),
            1.0,
            0,
        );
    }

    fn kv() -> ServiceConfig {
        use tpv_services::kv::KvConfig;
        use tpv_services::ServiceKind;
        ServiceConfig::without_interference(ServiceKind::Memcached(KvConfig {
            preload_keys: 100,
            ..KvConfig::default()
        }))
    }

    fn cohorted<'a>(
        service: &'a ServiceConfig,
        server: &'a MachineConfig,
        nodes: &'a [ClientNode],
        cohorts: &'a [CohortSpec],
    ) -> TopologySpec<'a> {
        TopologySpec {
            shards: None,
            service,
            server,
            nodes,
            duration: SimDuration::from_ms(50),
            warmup: SimDuration::from_ms(5),
            cohorts,
        }
    }

    #[test]
    fn cohort_lowering_orders_scales_and_attributes() {
        let service = kv();
        let server = MachineConfig::server_baseline();
        let explicit = [node("solo", 1_000.0)];
        let cohorts = [CohortSpec::new(node("class", 2_000.0), 5).with_tracked(2)];
        let topo = cohorted(&service, &server, &explicit, &cohorts);
        let layout = topo.layout();
        assert_eq!(layout.len(), 4, "explicit + 2 tracked + 1 pooled");
        assert_eq!(layout.origin(0), NodeOrigin::Explicit(0));
        assert_eq!(layout.origin(1), NodeOrigin::Tracked { cohort: 0, member: 0 });
        assert_eq!(layout.origin(2), NodeOrigin::Tracked { cohort: 0, member: 1 });
        assert_eq!(layout.origin(3), NodeOrigin::Pooled { cohort: 0, members: 3 });
        // Tracked replicas are exact template copies; the pooled node
        // superposes the remaining members' load.
        assert_eq!(layout.nodes()[1], cohorts[0].node);
        assert_eq!(layout.nodes()[3].qps, 6_000.0);
        assert_eq!(layout.display_label(0), "solo");
        assert_eq!(layout.display_label(1), "class#0");
        assert_eq!(layout.display_label(3), "class#pooled(3)");
        assert_eq!(layout.cohort_map(), vec![None, Some(0), Some(0), Some(0)]);
        // The spec-level aggregates see the full modeled population.
        assert_eq!(topo.modeled_clients(), 6);
        assert_eq!(topo.lowered_node_count(), 4);
        assert_eq!(topo.total_qps(), 11_000.0);
        assert_eq!(topo.total_connections(), 4 * GeneratorSpec::mutilate().connections);
        assert!(topo.validate().is_ok());
    }

    #[test]
    fn population_one_cohort_lowers_to_its_template() {
        let service = kv();
        let server = MachineConfig::server_baseline();
        let cohorts = [CohortSpec::new(node("unit", 3_333.25), 1)];
        let topo = cohorted(&service, &server, &[], &cohorts);
        let layout = topo.layout();
        assert_eq!(layout.len(), 1);
        // ×1.0 is bit-exact: the lowered node *is* the template.
        assert_eq!(layout.nodes()[0], cohorts[0].node);
        assert_eq!(layout.nodes()[0].content_key(), cohorts[0].node.content_key());
    }

    #[test]
    fn validate_reports_typed_errors() {
        let service = kv();
        let server = MachineConfig::server_baseline();
        let empty = cohorted(&service, &server, &[], &[]);
        assert_eq!(empty.validate(), Err(TopologyError::EmptyFleet));
        assert!(empty.validate().unwrap_err().to_string().contains("at least one client node"));

        let zero_pop = [CohortSpec::new(node("c", 100.0), 0)];
        let topo = cohorted(&service, &server, &[], &zero_pop);
        assert_eq!(topo.validate(), Err(TopologyError::EmptyCohort { label: "c".into() }));

        let over_tracked = [CohortSpec::new(node("c", 100.0), 2).with_tracked(3)];
        let topo = cohorted(&service, &server, &[], &over_tracked);
        assert!(matches!(topo.validate(), Err(TopologyError::TrackedExceedsPopulation { .. })));

        let closed = [CohortSpec::new(
            ClientNode::new(
                "closed",
                MachineConfig::high_performance(),
                GeneratorSpec::mutilate().closed_loop(SimDuration::from_us(100)),
                LinkConfig::cloudlab_lan(),
                100.0,
            ),
            4,
        )];
        let topo = cohorted(&service, &server, &[], &closed);
        assert!(matches!(topo.validate(), Err(TopologyError::PooledClosedLoop { .. })));
        assert!(topo.validate().unwrap_err().to_string().contains("open-loop"));
        // Tracking every member sidesteps pooling, so closed loops are
        // fine there.
        let all_tracked = [closed[0].clone().with_tracked(4)];
        let topo = cohorted(&service, &server, &[], &all_tracked);
        assert!(topo.validate().is_ok());

        let bad_qps = [node("dead", 0.0)];
        let topo = cohorted(&service, &server, &bad_qps, &[]);
        assert!(matches!(topo.validate(), Err(TopologyError::NonPositiveQps { .. })));
        assert!(topo.validate().unwrap_err().to_string().contains("offered load must be positive"));

        let nodes = [node("n", 100.0)];
        let mut bad_window = cohorted(&service, &server, &nodes, &[]);
        bad_window.warmup = bad_window.duration;
        assert_eq!(
            bad_window.validate(),
            Err(TopologyError::EmptyWindow { warmup: bad_window.warmup, duration: bad_window.duration })
        );
        assert!(bad_window.validate().unwrap_err().to_string().contains("warmup must be shorter"));

        // Multi-shard tiers are plain topologies now — phased or not.
        let shards = ShardSpec::uniform(server, 2);
        let mut multi = cohorted(&service, &server, &nodes, &[]);
        multi.shards = Some(&shards);
        assert!(multi.validate().is_ok());
    }
}
