//! # tpv-core — the experiment framework
//!
//! This crate is the paper's contribution turned into a library: given a
//! benchmark service, a *client-side* hardware configuration, a server
//! configuration and a load sweep, it runs the full simulated testbed and
//! answers the paper's questions —
//!
//! * What do the end-to-end measurements look like? ([`runtime`],
//!   [`experiment`], executed deterministically — parallel, cached or
//!   serial — by [`engine`]; [`topology`] generalizes the testbed to
//!   heterogeneous client *fleets* with per-node breakdowns via
//!   [`collect`])
//! * Do two client configurations lead to **different conclusions** about
//!   the same server feature? ([`analysis`], Findings 1–2)
//! * How many repetitions does each configuration need, and how long will
//!   the evaluation take? ([`analysis::iteration_estimate`], §V-C, Table IV)
//! * How *should* the client be configured? ([`recommend`], §VI)
//!
//! [`scenarios`] packages the paper's §V studies ready-to-run, [`survey`]
//! holds the Table I literature survey, and [`report`] renders
//! tables/series in the paper's formats. [`control`] closes the loop:
//! windowed observations feed mitigation policies (hedging, rerouting,
//! remediation, admission control) that act on the fleet between
//! windows.

// `deny` rather than `forbid`: the worker-pinning shim in [`pin`] scopes
// a single documented `sched_setaffinity` declaration behind a local
// `#[allow(unsafe_code)]`; everything else in the crate stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod collect;
pub mod control;
pub mod engine;
pub mod experiment;
pub mod fidelity;
pub mod pin;
pub mod recommend;
pub mod report;
pub mod runtime;
pub mod scenarios;
pub mod survey;
pub mod topology;

pub use analysis::{Comparison, Summary, Verdict};
pub use collect::{
    Collector, NodeStats, NodeWindow, NullCollector, PerCohortCollector, PerNodeCollector, PhaseCollector,
    PhaseStats, ShardWindow, TraceCollector, WindowedObserver,
};
pub use control::{
    AdmissionThrottle, ControlResult, ControlSpec, Controller, DoNothing, HedgePlan, HedgeRequests,
    HedgeSpec, MitigationAction, MitigationPolicy, RemediateNode, RerouteHotShard, WindowObservation,
};
pub use engine::{CacheStats, Engine, Job, JobPlan, RunCache};
pub use experiment::{Benchmark, Experiment, ExperimentResults, ServerScenario};
pub use pin::PinPolicy;
pub use runtime::{
    run_cohorted, run_once, run_phased, run_phased_sharded, run_phased_sharded_with, run_topology,
    run_traced, PhasedFleetResult, RunResult, RunSpec, RunTrace,
};
pub use topology::{
    uniform_fleet, ClientNode, CohortResult, CohortSpec, CohortedFleetResult, FleetResult, NodeDynamics,
    NodeResult, TopologyError, TopologySpec,
};
