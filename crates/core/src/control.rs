//! Closed-loop mitigation: observe windowed tails, decide, act.
//!
//! Everything below `tpv_core` *measures* client-side performance
//! variability; this module is the layer that finally **tames** it. A
//! [`Controller`] replays a (possibly phased, sharded) fleet as a
//! sequence of *control windows*. Each window is a complete, fully
//! deterministic kernel run over the fleet's dynamics
//! [sliced](crate::topology::NodeDynamics::slice) to that window; a
//! [`WindowedObserver`] rides along
//! and hands the per-node / per-shard windowed p99 and achieved rates to
//! a [`MitigationPolicy`] at the boundary. The policy's
//! [`MitigationAction`]s rewrite the working fleet state — hedging
//! plans, shard assignment, machine configuration, admission throttles —
//! and the next window runs under the mitigated configuration, through
//! exactly the phase-boundary rebuild seam
//! [`NodeDynamics`](crate::topology::NodeDynamics) already uses.
//!
//! # Why decisions stay bit-deterministic
//!
//! A policy sees only a [`WindowObservation`]: node rows sorted by
//! label, shard rows sorted by shard index, every statistic produced by
//! canonical-order merges. Actions address nodes by **label**, never by
//! execution order, and each window's seed is a pure function of
//! `(run seed, window index)`. So a controlled run is a pure function of
//! `(spec, policy, seed)` — bit-identical across worker counts and node
//! declaration permutations (pinned by `GOLDEN_CONTROL` in
//! `tests/golden_runtime.rs`), exactly like the uncontrolled kernel.
//!
//! # Example
//!
//! ```
//! use tpv_core::control::{ControlSpec, Controller, DoNothing};
//! use tpv_core::topology::{ClientNode, ShardSpec};
//! use tpv_hw::MachineConfig;
//! use tpv_loadgen::GeneratorSpec;
//! use tpv_net::LinkConfig;
//! use tpv_sim::SimDuration;
//!
//! let service = tpv_core::experiment::Benchmark::memcached().service;
//! let nodes: Vec<ClientNode> = (0..4)
//!     .map(|i| ClientNode::new(
//!         format!("agent{i}"),
//!         MachineConfig::high_performance(),
//!         GeneratorSpec::mutilate(),
//!         LinkConfig::cloudlab_lan(),
//!         20_000.0,
//!     ))
//!     .collect();
//! let spec = ControlSpec {
//!     service,
//!     shards: ShardSpec::uniform(MachineConfig::server_baseline(), 2),
//!     nodes,
//!     window: SimDuration::from_ms(10),
//!     windows: 2,
//!     warmup: SimDuration::from_ms(2),
//! };
//! let result = Controller::new(&spec, &DoNothing).run(7, 1);
//! assert_eq!(result.windows.len(), 2);
//! assert!(result.decisions.is_empty());
//! assert!(result.windows[1].aggregate.samples > 0);
//! ```

use std::collections::BTreeMap;

use tpv_hw::MachineConfig;
use tpv_services::ServiceConfig;
use tpv_sim::{SimDuration, SimRng, SimTime};

use crate::collect::{ShardWindow, WindowedObserver};
use crate::pin::PinPolicy;
use crate::runtime::{run_sharded_collected_hedged_with, RunResult};
use crate::topology::{ClientNode, ShardPolicy, ShardSpec, TopologySpec};

/// How one node hedges: when a primary response overruns `deadline`, an
/// analytic duplicate is issued to a replica on `backend` and the
/// *earlier* of the two responses is the one measured.
///
/// The hedge leg is analytic, not evented: the replica models the
/// backend's service-time distribution (its own content-addressed RNG
/// stream, fork index 7 of the node master — unused by non-hedged runs,
/// so enabling hedging perturbs nothing else), but not the live queue
/// depth of the target shard. That keeps the hedge path allocation-free
/// and event-free — [`crate::collect::EventCountCollector`] counts are
/// identical with and without hedging.
#[derive(Debug, Clone, PartialEq)]
pub struct HedgeSpec {
    /// How long the primary may run before the hedge fires.
    pub deadline: SimDuration,
    /// The machine the hedge replica runs on.
    pub backend: MachineConfig,
}

/// Which nodes hedge, keyed by node label. Entries are kept sorted, so a
/// plan's `Debug` representation — and anything fingerprinted from it —
/// is independent of insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HedgePlan {
    entries: Vec<(String, HedgeSpec)>,
}

impl HedgePlan {
    /// An empty plan: nobody hedges.
    pub fn new() -> Self {
        HedgePlan::default()
    }

    /// True when no node hedges.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of hedging nodes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Inserts or replaces the hedge spec for `label`.
    pub fn set(&mut self, label: impl Into<String>, spec: HedgeSpec) {
        let label = label.into();
        match self.entries.binary_search_by(|(l, _)| l.as_str().cmp(&label)) {
            Ok(i) => self.entries[i].1 = spec,
            Err(i) => self.entries.insert(i, (label, spec)),
        }
    }

    /// The hedge spec for `label`, if that node hedges.
    pub fn get(&self, label: &str) -> Option<&HedgeSpec> {
        self.entries.binary_search_by(|(l, _)| l.as_str().cmp(label)).ok().map(|i| &self.entries[i].1)
    }
}

/// One node's row of a [`WindowObservation`]: the windowed signal plus
/// the mitigation state already applied to the node, so policies can be
/// idempotent (no re-hedging an already-hedged node).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeObservation {
    /// The node's label — how actions address it.
    pub label: String,
    /// The shard the node was assigned to during this window.
    pub shard: usize,
    /// Requests recorded for this node inside the window.
    pub samples: u64,
    /// The node's windowed p99 ([`SimDuration::ZERO`] when empty).
    pub p99: SimDuration,
    /// Completions per second of window time.
    pub achieved_qps: f64,
    /// The node's offered load during the window.
    pub target_qps: f64,
    /// Hedge legs fired for this node inside the window.
    pub hedges: u64,
    /// The admission throttle currently applied (1.0 = none).
    pub throttle: f64,
    /// Whether a hedge plan is currently active for this node.
    pub hedged: bool,
    /// Whether the node's machine has been remediated.
    pub remediated: bool,
}

/// What a [`MitigationPolicy`] sees at a window boundary: node rows
/// sorted by label, shard rows sorted by shard index — canonical orders,
/// so a policy that walks them in sequence is automatically independent
/// of fleet declaration order and execution schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowObservation {
    /// Index of the window that just completed.
    pub window: usize,
    /// Per-node windowed stats, sorted by label.
    pub nodes: Vec<NodeObservation>,
    /// Per-shard windowed stats, sorted by shard index.
    pub shards: Vec<ShardWindow>,
}

impl WindowObservation {
    /// The loaded shard with the worst windowed p99 (ties: lowest
    /// index); `None` when every shard is empty.
    pub fn hottest_shard(&self) -> Option<&ShardWindow> {
        self.shards.iter().filter(|s| s.samples > 0).max_by_key(|s| (s.p99, std::cmp::Reverse(s.shard)))
    }

    /// The loaded shard with the best windowed p99 (ties: lowest
    /// index); `None` when every shard is empty.
    pub fn coldest_shard(&self) -> Option<&ShardWindow> {
        self.shards.iter().filter(|s| s.samples > 0).min_by_key(|s| (s.p99, s.shard))
    }
}

/// One mitigation a policy wants applied before the next window. Nodes
/// are addressed by label; shard targets by declaration index.
#[derive(Debug, Clone, PartialEq)]
pub enum MitigationAction {
    /// Start hedging `node`'s requests: duplicates go to a replica on
    /// shard `to_shard`'s machine once the primary overruns `deadline`.
    Hedge {
        /// Label of the node to hedge.
        node: String,
        /// Hedge deadline.
        deadline: SimDuration,
        /// Shard whose machine hosts the hedge replica.
        to_shard: usize,
    },
    /// Move `node` onto shard `to_shard` from the next window on.
    Reroute {
        /// Label of the node to move.
        node: String,
        /// Destination shard.
        to_shard: usize,
    },
    /// Swap `node`'s machine configuration — the simulated analogue of a
    /// governor/turbo reconfiguration through
    /// `tpv_hw::CoreResource::reconfigure`, which is what the kernel's
    /// client threads apply at the next window rebuild.
    Remediate {
        /// Label of the node to remediate.
        node: String,
        /// The configuration the node is switched to.
        config: MachineConfig,
    },
    /// Scale `node`'s offered load to `factor` (absolute multiplier over
    /// the declared qps) from the next window on.
    Throttle {
        /// Label of the node to throttle.
        node: String,
        /// New absolute load multiplier, in `(0, 1]`.
        factor: f64,
    },
}

impl MitigationAction {
    /// The label of the node this action addresses.
    pub fn node(&self) -> &str {
        match self {
            MitigationAction::Hedge { node, .. }
            | MitigationAction::Reroute { node, .. }
            | MitigationAction::Remediate { node, .. }
            | MitigationAction::Throttle { node, .. } => node,
        }
    }
}

/// A mitigation strategy: a **pure function** from a canonical-order
/// [`WindowObservation`] to a list of [`MitigationAction`]s. Purity is
/// the determinism contract — a policy must not consult anything outside
/// the observation (no wall clock, no ambient randomness), and two calls
/// on equal observations must return equal action lists.
pub trait MitigationPolicy {
    /// Short stable name for reports and fingerprints.
    fn name(&self) -> &'static str;

    /// The actions to apply before the next window.
    fn decide(&self, obs: &WindowObservation) -> Vec<MitigationAction>;
}

/// The baseline: observes and never acts.
#[derive(Debug, Clone, Copy, Default)]
pub struct DoNothing;

impl MitigationPolicy for DoNothing {
    fn name(&self) -> &'static str {
        "do_nothing"
    }

    fn decide(&self, _obs: &WindowObservation) -> Vec<MitigationAction> {
        Vec::new()
    }
}

/// Hedge slow nodes: any node whose windowed p99 exceeds `threshold`
/// starts duplicating overdue requests to a replica on the *coldest*
/// shard (first response wins). The tail-taming classic — trades
/// duplicate work for tail latency.
#[derive(Debug, Clone)]
pub struct HedgeRequests {
    /// Nodes with a windowed p99 above this start hedging.
    pub threshold: SimDuration,
    /// How long the primary may run before the hedge fires.
    pub deadline: SimDuration,
}

impl MitigationPolicy for HedgeRequests {
    fn name(&self) -> &'static str {
        "hedge_requests"
    }

    fn decide(&self, obs: &WindowObservation) -> Vec<MitigationAction> {
        let Some(cold) = obs.coldest_shard() else { return Vec::new() };
        obs.nodes
            .iter()
            .filter(|n| n.samples > 0 && !n.hedged && n.p99 > self.threshold)
            .map(|n| MitigationAction::Hedge {
                node: n.label.clone(),
                deadline: self.deadline,
                to_shard: cold.shard,
            })
            .collect()
    }
}

/// Rebalance the tier: when the hottest shard's windowed p99 is at least
/// `min_ratio` times the coldest's, move up to `max_moves` of the
/// hottest shard's worst nodes onto the coldest shard.
#[derive(Debug, Clone)]
pub struct RerouteHotShard {
    /// Minimum hot/cold p99 ratio before the policy acts.
    pub min_ratio: f64,
    /// Nodes moved per boundary.
    pub max_moves: usize,
}

impl MitigationPolicy for RerouteHotShard {
    fn name(&self) -> &'static str {
        "reroute_hot_shard"
    }

    fn decide(&self, obs: &WindowObservation) -> Vec<MitigationAction> {
        let (Some(hot), Some(cold)) = (obs.hottest_shard(), obs.coldest_shard()) else {
            return Vec::new();
        };
        if hot.shard == cold.shard || (hot.p99.as_ns() as f64) < self.min_ratio * cold.p99.as_ns() as f64 {
            return Vec::new();
        }
        let (hot, cold) = (hot.shard, cold.shard);
        // Worst offenders first; label breaks ties so the order is
        // canonical whatever the declaration permutation.
        let mut flagged: Vec<&NodeObservation> =
            obs.nodes.iter().filter(|n| n.shard == hot && n.samples > 0).collect();
        flagged.sort_by(|a, b| b.p99.cmp(&a.p99).then_with(|| a.label.cmp(&b.label)));
        flagged
            .into_iter()
            .take(self.max_moves)
            .map(|n| MitigationAction::Reroute { node: n.label.clone(), to_shard: cold })
            .collect()
    }
}

/// Fix the client itself: any node whose windowed p99 exceeds
/// `threshold` gets its machine swapped to `config` — the governor /
/// C-state remediation the paper's recommendations amount to, applied
/// closed-loop instead of by fiat.
#[derive(Debug, Clone)]
pub struct RemediateNode {
    /// Nodes with a windowed p99 above this are remediated.
    pub threshold: SimDuration,
    /// The configuration slow nodes are switched to.
    pub config: MachineConfig,
}

impl MitigationPolicy for RemediateNode {
    fn name(&self) -> &'static str {
        "remediate_node"
    }

    fn decide(&self, obs: &WindowObservation) -> Vec<MitigationAction> {
        obs.nodes
            .iter()
            .filter(|n| n.samples > 0 && !n.remediated && n.p99 > self.threshold)
            .map(|n| MitigationAction::Remediate { node: n.label.clone(), config: self.config })
            .collect()
    }
}

/// Shed load: any node whose windowed p99 exceeds `threshold` has its
/// offered rate scaled by `factor` (compounding per boundary, never
/// below `floor`). Trades throughput for tail latency.
#[derive(Debug, Clone)]
pub struct AdmissionThrottle {
    /// Nodes with a windowed p99 above this are throttled further.
    pub threshold: SimDuration,
    /// Multiplier applied to the current throttle at each decision.
    pub factor: f64,
    /// The throttle never drops below this.
    pub floor: f64,
}

impl MitigationPolicy for AdmissionThrottle {
    fn name(&self) -> &'static str {
        "admission_throttle"
    }

    fn decide(&self, obs: &WindowObservation) -> Vec<MitigationAction> {
        obs.nodes
            .iter()
            .filter(|n| n.samples > 0 && n.p99 > self.threshold && n.throttle * self.factor >= self.floor)
            .map(|n| MitigationAction::Throttle { node: n.label.clone(), factor: n.throttle * self.factor })
            .collect()
    }
}

/// Everything a controlled run needs: the fleet, the tier, and the
/// window geometry. The run covers `windows × window` of simulated time;
/// node dynamics (diurnal rates, decay plans) are declared over that
/// whole span and sliced per window.
#[derive(Debug, Clone)]
pub struct ControlSpec {
    /// The service under test.
    pub service: ServiceConfig,
    /// The server tier and the *initial* node→shard assignment.
    pub shards: ShardSpec,
    /// The client fleet. Labels must be unique — they are how policies
    /// address nodes.
    pub nodes: Vec<ClientNode>,
    /// Length of one control window.
    pub window: SimDuration,
    /// Number of windows (boundaries between them are the decision
    /// points: `windows - 1` decisions).
    pub windows: usize,
    /// Warmup discarded at the start of the **first** window only;
    /// later windows inherit a warmed topology epoch.
    pub warmup: SimDuration,
}

impl ControlSpec {
    /// Checks the spec; the controller calls this once per run.
    ///
    /// # Panics
    ///
    /// Panics on an empty fleet, duplicate labels, a zero window, zero
    /// windows, `warmup >= window`, or a shard spec that rejects the
    /// fleet.
    pub fn validate(&self) {
        assert!(!self.nodes.is_empty(), "a controlled run needs at least one node");
        assert!(self.windows > 0, "a controlled run needs at least one window");
        assert!(!self.window.is_zero(), "control windows must be positive");
        assert!(self.warmup < self.window, "warmup must be shorter than one window");
        self.shards.validate(self.nodes.len());
        let mut labels: Vec<&str> = self.nodes.iter().map(|n| n.label.as_str()).collect();
        labels.sort_unstable();
        labels.windows(2).for_each(|pair| {
            assert_ne!(pair[0], pair[1], "duplicate node label {:?} — labels address actions", pair[0]);
        });
    }

    /// Total simulated time a controlled run covers.
    pub fn horizon(&self) -> SimDuration {
        self.window * self.windows as u64
    }
}

/// One decision the policy made, for the audit log.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// The window whose boundary produced this decision.
    pub window: usize,
    /// The action applied.
    pub action: MitigationAction,
}

/// What one control window measured.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowReport {
    /// Window index.
    pub window: usize,
    /// First instant of the window (global timeline).
    pub start: SimTime,
    /// First instant after the window (global timeline).
    pub end: SimTime,
    /// The window's pooled fleet result.
    pub aggregate: RunResult,
    /// The window's per-node rows (exactly what the policy saw), sorted
    /// by label.
    pub nodes: Vec<NodeObservation>,
    /// The window's per-shard tails, sorted by shard index.
    pub shards: Vec<ShardWindow>,
    /// Hedge legs fired during the window.
    pub hedges: u64,
}

/// The full outcome of a controlled run: per-window reports plus the
/// decision log.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlResult {
    /// The policy that ran.
    pub policy: String,
    /// One report per window, in order.
    pub windows: Vec<WindowReport>,
    /// Every decision, in the order applied.
    pub decisions: Vec<DecisionRecord>,
}

impl ControlResult {
    /// The pooled p99 spread — worst window p99 over best window p99 —
    /// across windows `skip..` with samples. Skipping the pre-decision
    /// prefix (typically `skip = 1`) compares policies on the windows
    /// they could actually influence. Returns `0.0` when undefined (no
    /// loaded windows, or a best p99 of zero).
    pub fn pooled_p99_spread(&self, skip: usize) -> f64 {
        let p99s: Vec<f64> = self
            .windows
            .iter()
            .skip(skip)
            .filter(|w| w.aggregate.samples > 0)
            .map(|w| w.aggregate.p99.as_us())
            .collect();
        let worst = p99s.iter().cloned().fold(f64::MIN, f64::max);
        let best = p99s.iter().cloned().fold(f64::MAX, f64::min);
        if p99s.is_empty() || best <= 0.0 {
            0.0
        } else {
            worst / best
        }
    }

    /// The fleet p99 spread — worst node p99 over best node p99 within a
    /// window, maximized across windows `skip..` — the paper's
    /// client-side variability metric under mitigation: how far apart
    /// identical work still lands depending on which client issued it.
    /// Returns `0.0` when undefined (no window with two loaded nodes, or
    /// a best p99 of zero).
    pub fn fleet_p99_spread(&self, skip: usize) -> f64 {
        self.windows
            .iter()
            .skip(skip)
            .filter_map(|w| {
                let p99s: Vec<f64> =
                    w.nodes.iter().filter(|n| n.samples > 0).map(|n| n.p99.as_us()).collect();
                let worst = p99s.iter().cloned().fold(f64::MIN, f64::max);
                let best = p99s.iter().cloned().fold(f64::MAX, f64::min);
                (p99s.len() >= 2 && best > 0.0).then_some(worst / best)
            })
            .fold(0.0, f64::max)
    }

    /// The worst window p99 across windows `skip..`.
    pub fn worst_window_p99(&self, skip: usize) -> SimDuration {
        self.windows.iter().skip(skip).map(|w| w.aggregate.p99).max().unwrap_or(SimDuration::ZERO)
    }

    /// Mean achieved fleet rate across windows `skip..` — the throughput
    /// cost of load-shedding policies.
    pub fn mean_achieved_qps(&self, skip: usize) -> f64 {
        let rates: Vec<f64> = self.windows.iter().skip(skip).map(|w| w.aggregate.achieved_qps).collect();
        if rates.is_empty() {
            0.0
        } else {
            rates.iter().sum::<f64>() / rates.len() as f64
        }
    }

    /// Total hedge legs fired over the run.
    pub fn total_hedges(&self) -> u64 {
        self.windows.iter().map(|w| w.hedges).sum()
    }
}

/// The working (mitigated) state of one node between windows.
#[derive(Debug, Clone)]
struct Working {
    shard: usize,
    throttle: f64,
    hedge: Option<(SimDuration, usize)>,
    remediate: Option<MachineConfig>,
}

/// The closed loop: runs a [`ControlSpec`] window by window under a
/// [`MitigationPolicy`]. See the [module docs](crate::control) for the
/// determinism argument.
pub struct Controller<'a> {
    spec: &'a ControlSpec,
    policy: &'a dyn MitigationPolicy,
}

impl<'a> Controller<'a> {
    /// A controller over `spec` driven by `policy`.
    pub fn new(spec: &'a ControlSpec, policy: &'a dyn MitigationPolicy) -> Self {
        Controller { spec, policy }
    }

    /// Executes the controlled run. `workers` parallelizes *within* each
    /// window (shards run concurrently, exactly like
    /// [`crate::runtime::run_topology_sharded`]); windows themselves are
    /// inherently sequential — each one's configuration depends on the
    /// previous one's observation.
    ///
    /// Bit-identical whatever `workers` or the fleet declaration order
    /// (for a consistently permuted initial assignment).
    ///
    /// # Panics
    ///
    /// Panics if [`ControlSpec::validate`] rejects the spec, if a window
    /// topology is invalid, or if the policy addresses an unknown node
    /// or an out-of-range shard.
    pub fn run(&self, seed: u64, workers: usize) -> ControlResult {
        let spec = self.spec;
        spec.validate();
        let index: BTreeMap<&str, usize> =
            spec.nodes.iter().enumerate().map(|(i, n)| (n.label.as_str(), i)).collect();
        let mut working: Vec<Working> = spec
            .shards
            .assign(spec.nodes.len())
            .into_iter()
            .map(|shard| Working { shard, throttle: 1.0, hedge: None, remediate: None })
            .collect();
        let mut windows = Vec::with_capacity(spec.windows);
        let mut decisions = Vec::new();
        for w in 0..spec.windows {
            let t0 = SimTime::ZERO + spec.window * w as u64;
            let t1 = SimTime::ZERO + spec.window * (w as u64 + 1);
            // The window's effective fleet: dynamics sliced to the
            // window, mitigations applied. An untouched static node is
            // cloned verbatim (`qps * 1.0` is exact), so its windowed
            // behaviour is a pure function of what it is.
            let eff: Vec<ClientNode> = spec
                .nodes
                .iter()
                .zip(&working)
                .map(|(node, wk)| {
                    let mut n = node.clone();
                    if let Some(dy) = n.dynamics.take() {
                        n.dynamics = Some(dy.slice(t0, t1));
                    }
                    if let Some(cfg) = wk.remediate {
                        // Remediation pins the machine: it overrides both
                        // the static config and any scheduled decay plan.
                        n.machine = cfg;
                        if let Some(dy) = n.dynamics.as_mut() {
                            dy.machine = None;
                        }
                    }
                    n.qps *= wk.throttle;
                    n
                })
                .collect();
            let tier = ShardSpec {
                machines: spec.shards.machines.clone(),
                policy: ShardPolicy::Explicit(working.iter().map(|wk| wk.shard).collect()),
            };
            let topo = TopologySpec {
                shards: Some(&tier),
                service: &spec.service,
                server: &spec.shards.machines[0],
                nodes: &eff,
                duration: spec.window,
                warmup: if w == 0 { spec.warmup } else { SimDuration::ZERO },
                cohorts: &[],
            };
            let mut plan = HedgePlan::new();
            for (node, wk) in spec.nodes.iter().zip(&working) {
                if let Some((deadline, shard)) = wk.hedge {
                    plan.set(
                        node.label.clone(),
                        HedgeSpec { deadline, backend: spec.shards.machines[shard] },
                    );
                }
            }
            let hedge = if plan.is_empty() { None } else { Some(&plan) };
            // Window seeds are content-addressed off the run seed: pure
            // in (seed, w), independent of everything the policy did.
            let window_seed = SimRng::seed_from_u64(seed)
                .fork(crate::engine::fnv64_debug(&("control-window", w)))
                .next_u64();
            let n = eff.len();
            let (aggregate, _, observer) = run_sharded_collected_hedged_with(
                &topo,
                window_seed,
                workers,
                PinPolicy::Off,
                hedge,
                |shard, key| WindowedObserver::for_partition(n, key, shard),
            );
            let measured = spec.window - topo.warmup;
            let (node_windows, shard_windows) = observer.into_windows(measured);
            let mut nodes_obs: Vec<NodeObservation> = node_windows
                .into_iter()
                .map(|nw| NodeObservation {
                    label: spec.nodes[nw.node].label.clone(),
                    shard: working[nw.node].shard,
                    samples: nw.samples,
                    p99: nw.p99,
                    achieved_qps: nw.achieved_qps,
                    target_qps: nw.target_qps,
                    hedges: nw.hedges,
                    throttle: working[nw.node].throttle,
                    hedged: working[nw.node].hedge.is_some(),
                    remediated: working[nw.node].remediate.is_some(),
                })
                .collect();
            nodes_obs.sort_by(|a, b| a.label.cmp(&b.label));
            let obs = WindowObservation { window: w, nodes: nodes_obs, shards: shard_windows };
            windows.push(WindowReport {
                window: w,
                start: t0,
                end: t1,
                aggregate,
                nodes: obs.nodes.clone(),
                shards: obs.shards.clone(),
                hedges: obs.nodes.iter().map(|n| n.hedges).sum(),
            });
            // The last window has no successor to mitigate.
            if w + 1 < spec.windows {
                for action in self.policy.decide(&obs) {
                    apply(&mut working, &index, &action, spec.shards.count());
                    decisions.push(DecisionRecord { window: w, action });
                }
            }
        }
        ControlResult { policy: self.policy.name().to_string(), windows, decisions }
    }
}

/// Applies one action to the working fleet state.
fn apply(working: &mut [Working], index: &BTreeMap<&str, usize>, action: &MitigationAction, shards: usize) {
    let i = *index
        .get(action.node())
        .unwrap_or_else(|| panic!("policy addressed unknown node {:?}", action.node()));
    match action {
        MitigationAction::Hedge { deadline, to_shard, .. } => {
            assert!(*to_shard < shards, "hedge target shard {to_shard} out of range (K = {shards})");
            working[i].hedge = Some((*deadline, *to_shard));
        }
        MitigationAction::Reroute { to_shard, .. } => {
            assert!(*to_shard < shards, "reroute target shard {to_shard} out of range (K = {shards})");
            working[i].shard = *to_shard;
        }
        MitigationAction::Remediate { config, .. } => {
            working[i].remediate = Some(*config);
        }
        MitigationAction::Throttle { factor, .. } => {
            assert!(
                factor.is_finite() && *factor > 0.0 && *factor <= 1.0,
                "throttle factor must be in (0, 1], got {factor}"
            );
            working[i].throttle = *factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard_win(shard: usize, samples: u64, p99_us: u64) -> ShardWindow {
        ShardWindow { shard, samples, p99: SimDuration::from_us(p99_us), achieved_qps: samples as f64 / 0.01 }
    }

    fn node_obs(label: &str, shard: usize, p99_us: u64) -> NodeObservation {
        NodeObservation {
            label: label.to_string(),
            shard,
            samples: 100,
            p99: SimDuration::from_us(p99_us),
            achieved_qps: 10_000.0,
            target_qps: 10_000.0,
            hedges: 0,
            throttle: 1.0,
            hedged: false,
            remediated: false,
        }
    }

    #[test]
    fn policies_no_op_when_thresholds_unmet() {
        // Every node comfortably under threshold, shards balanced: no
        // policy has anything to do.
        let obs = WindowObservation {
            window: 0,
            nodes: vec![node_obs("a0", 0, 80), node_obs("a1", 1, 85)],
            shards: vec![shard_win(0, 100, 80), shard_win(1, 100, 85)],
        };
        let threshold = SimDuration::from_us(150);
        assert!(HedgeRequests { threshold, deadline: SimDuration::from_us(100) }.decide(&obs).is_empty());
        assert!(RerouteHotShard { min_ratio: 1.5, max_moves: 2 }.decide(&obs).is_empty());
        assert!(RemediateNode { threshold, config: MachineConfig::high_performance() }
            .decide(&obs)
            .is_empty());
        assert!(AdmissionThrottle { threshold, factor: 0.7, floor: 0.3 }.decide(&obs).is_empty());
        assert!(DoNothing.decide(&obs).is_empty());
    }

    #[test]
    fn policies_no_op_on_an_empty_window() {
        // First-boundary edge case: the fleet recorded nothing yet. Zero
        // samples must read as "no signal", not "fast" or a panic.
        let mut nodes = vec![node_obs("a0", 0, 0)];
        nodes[0].samples = 0;
        nodes[0].p99 = SimDuration::ZERO;
        let obs =
            WindowObservation { window: 0, nodes, shards: vec![shard_win(0, 0, 0), shard_win(1, 0, 0)] };
        let threshold = SimDuration::ZERO;
        assert!(HedgeRequests { threshold, deadline: SimDuration::from_us(50) }.decide(&obs).is_empty());
        assert!(RerouteHotShard { min_ratio: 1.0, max_moves: 4 }.decide(&obs).is_empty());
        assert!(RemediateNode { threshold, config: MachineConfig::high_performance() }
            .decide(&obs)
            .is_empty());
        assert!(AdmissionThrottle { threshold, factor: 0.5, floor: 0.1 }.decide(&obs).is_empty());
    }

    #[test]
    fn hedge_targets_the_coldest_shard_and_skips_hedged_nodes() {
        let mut nodes = vec![node_obs("slow0", 0, 400), node_obs("slow1", 0, 300), node_obs("ok", 1, 70)];
        nodes[1].hedged = true;
        let obs = WindowObservation {
            window: 2,
            nodes,
            shards: vec![shard_win(0, 200, 400), shard_win(1, 100, 70)],
        };
        let actions =
            HedgeRequests { threshold: SimDuration::from_us(150), deadline: SimDuration::from_us(120) }
                .decide(&obs);
        assert_eq!(
            actions,
            vec![MitigationAction::Hedge {
                node: "slow0".to_string(),
                deadline: SimDuration::from_us(120),
                to_shard: 1,
            }]
        );
    }

    #[test]
    fn reroute_moves_worst_nodes_hot_to_cold() {
        let obs = WindowObservation {
            window: 1,
            nodes: vec![
                node_obs("a", 0, 500),
                node_obs("b", 0, 300),
                node_obs("c", 0, 400),
                node_obs("d", 1, 60),
            ],
            shards: vec![shard_win(0, 300, 500), shard_win(1, 100, 60)],
        };
        let actions = RerouteHotShard { min_ratio: 2.0, max_moves: 2 }.decide(&obs);
        assert_eq!(
            actions,
            vec![
                MitigationAction::Reroute { node: "a".to_string(), to_shard: 1 },
                MitigationAction::Reroute { node: "c".to_string(), to_shard: 1 },
            ]
        );
    }

    #[test]
    fn throttle_compounds_down_to_the_floor() {
        let mut obs = WindowObservation {
            window: 0,
            nodes: vec![node_obs("a", 0, 400)],
            shards: vec![shard_win(0, 100, 400)],
        };
        let policy = AdmissionThrottle { threshold: SimDuration::from_us(150), factor: 0.5, floor: 0.3 };
        let first = policy.decide(&obs);
        assert_eq!(first, vec![MitigationAction::Throttle { node: "a".to_string(), factor: 0.5 }]);
        // One more halving would cross the floor: the policy stops.
        obs.nodes[0].throttle = 0.5;
        assert!(policy.decide(&obs).is_empty());
    }

    #[test]
    fn hedge_plan_lookup_is_insertion_order_independent() {
        let spec = |us: u64| HedgeSpec {
            deadline: SimDuration::from_us(us),
            backend: MachineConfig::server_baseline(),
        };
        let mut a = HedgePlan::new();
        a.set("x", spec(10));
        a.set("b", spec(20));
        let mut b = HedgePlan::new();
        b.set("b", spec(20));
        b.set("x", spec(10));
        assert_eq!(a, b);
        assert_eq!(a.get("b"), Some(&spec(20)));
        assert_eq!(a.get("missing"), None);
        a.set("b", spec(30));
        assert_eq!(a.len(), 2);
        assert_eq!(a.get("b"), Some(&spec(30)));
    }
}
