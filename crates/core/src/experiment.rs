//! Experiments: scenario matrices of (benchmark × client × server × load).
//!
//! An [`Experiment`] is the unit of the paper's §V studies: it sweeps a
//! QPS range for every (client-config, server-scenario) pair, executing
//! `runs` independent seeded runs per cell — "each experiment is the
//! average of 50 runs … In between runs we reset the environment".

use tpv_hw::{CStatePolicy, MachineConfig};
use tpv_loadgen::GeneratorSpec;
use tpv_net::LinkConfig;
use tpv_services::hdsearch::HdSearchConfig;
use tpv_services::kv::KvConfig;
use tpv_services::socialnet::SocialConfig;
use tpv_services::synthetic::SyntheticConfig;
use tpv_services::{ServiceConfig, ServiceKind};
use tpv_sim::SimDuration;

use crate::analysis::Summary;
use crate::engine::{fingerprint, Engine, JobPlan};
use crate::runtime::{RunResult, RunSpec};

/// A benchmark: the service under test plus the generator that drives it.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Human-readable name used in reports.
    pub name: String,
    /// The service and its interference profile.
    pub service: ServiceConfig,
    /// The workload generator deployment (§II taxonomy).
    pub generator: GeneratorSpec,
    /// The client↔server network.
    pub link: LinkConfig,
}

impl Benchmark {
    /// Memcached with the ETC workload driven by mutilate (§IV-B).
    pub fn memcached() -> Self {
        Benchmark {
            name: "memcached".into(),
            service: ServiceConfig::new(ServiceKind::Memcached(KvConfig::default())),
            generator: GeneratorSpec::mutilate(),
            link: LinkConfig::cloudlab_lan(),
        }
    }

    /// HDSearch driven by the µSuite busy-wait client (§IV-B).
    pub fn hdsearch() -> Self {
        Benchmark {
            name: "hdsearch".into(),
            service: ServiceConfig::new(ServiceKind::HdSearch(HdSearchConfig::default())),
            generator: GeneratorSpec::microsuite_client(),
            link: LinkConfig::cloudlab_lan(),
        }
    }

    /// Social Network (read-user-timeline) driven by wrk2 (§IV-B).
    pub fn social_network() -> Self {
        Benchmark {
            name: "socialnet".into(),
            service: ServiceConfig::new(ServiceKind::SocialNetwork(SocialConfig::default())),
            generator: GeneratorSpec::wrk2(),
            link: LinkConfig::cloudlab_lan(),
        }
    }

    /// The synthetic service with the given added busy-wait delay (§IV-B).
    pub fn synthetic(added_delay: SimDuration) -> Self {
        Benchmark {
            name: format!("synthetic+{}us", added_delay.as_us()),
            service: ServiceConfig::new(ServiceKind::Synthetic(SyntheticConfig::with_delay(added_delay))),
            generator: GeneratorSpec::synthetic_client(),
            link: LinkConfig::cloudlab_lan(),
        }
    }
}

/// A named server-side configuration, the variable of the §V-A studies.
#[derive(Debug, Clone)]
pub struct ServerScenario {
    /// Name used in reports ("SMToff", "C1Eon", …).
    pub name: String,
    /// The configuration.
    pub config: MachineConfig,
}

impl ServerScenario {
    /// The paper's server baseline (Table II): SMT off, C-states C0/C1.
    pub fn baseline() -> Self {
        ServerScenario { name: "SMToff".into(), config: MachineConfig::server_baseline() }
    }

    /// Baseline with SMT enabled (the §V-A SMT study variant).
    pub fn smt_on() -> Self {
        ServerScenario { name: "SMTon".into(), config: MachineConfig::server_baseline().with_smt(true) }
    }

    /// Baseline with C1E enabled (the §V-A C1E study variant).
    pub fn c1e_on() -> Self {
        ServerScenario {
            name: "C1Eon".into(),
            config: MachineConfig::server_baseline().with_cstates(CStatePolicy::UpToC1E),
        }
    }

    /// A custom named scenario.
    pub fn custom(name: impl Into<String>, config: MachineConfig) -> Self {
        ServerScenario { name: name.into(), config }
    }
}

/// A fully specified experiment (built via [`Experiment::builder`]).
#[derive(Debug, Clone)]
pub struct Experiment {
    benchmark: Benchmark,
    clients: Vec<(String, MachineConfig)>,
    servers: Vec<ServerScenario>,
    qps: Vec<f64>,
    runs: usize,
    duration: SimDuration,
    warmup: SimDuration,
    seed: u64,
    parallel: bool,
    shuffle_order: bool,
}

/// Builder for [`Experiment`].
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    inner: Experiment,
}

impl Experiment {
    /// Starts building an experiment on a benchmark.
    pub fn builder(benchmark: Benchmark) -> ExperimentBuilder {
        ExperimentBuilder {
            inner: Experiment {
                benchmark,
                clients: Vec::new(),
                servers: Vec::new(),
                qps: Vec::new(),
                runs: 20,
                duration: SimDuration::from_ms(200),
                warmup: SimDuration::from_ms(20),
                seed: 0xC1DE,
                parallel: true,
                shuffle_order: false,
            },
        }
    }

    /// Executes every cell of the matrix on a fresh [`Engine`] honouring
    /// the builder's `parallel` flag.
    ///
    /// # Panics
    ///
    /// Panics if no client, server or QPS point was configured.
    pub fn run(&self) -> ExperimentResults {
        let engine = if self.parallel { Engine::new() } else { Engine::serial() };
        self.run_with(&engine)
    }

    /// Executes every cell of the matrix through the given engine.
    ///
    /// Results are bit-identical whatever the engine's parallelism or
    /// cache temperature: the [`JobPlan`] binds a content-derived seed to
    /// every `(cell, run)` pair and the engine reassembles results in
    /// `(cell, run)` order. Two cells with identical content (say, the
    /// same client added twice) are therefore the same jobs and return
    /// bit-identical samples — see [`JobPlan::new`].
    ///
    /// # Panics
    ///
    /// Panics if no client, server or QPS point was configured.
    pub fn run_with(&self, engine: &Engine) -> ExperimentResults {
        assert!(!self.clients.is_empty(), "experiment needs at least one client config");
        assert!(!self.servers.is_empty(), "experiment needs at least one server scenario");
        assert!(!self.qps.is_empty(), "experiment needs at least one QPS point");
        assert!(self.runs >= 1, "experiment needs at least one run");

        // Enumerate cells.
        let mut cells: Vec<Cell> = Vec::new();
        for (client_label, client) in &self.clients {
            for server in &self.servers {
                for &qps in &self.qps {
                    cells.push(Cell {
                        client_label: client_label.clone(),
                        client: *client,
                        server_label: server.name.clone(),
                        server: server.config,
                        qps,
                        samples: Vec::with_capacity(self.runs),
                    });
                }
            }
        }

        let specs: Vec<RunSpec<'_>> = cells.iter().map(|cell| self.spec_for(cell)).collect();
        let fingerprints: Vec<u64> = specs.iter().map(fingerprint).collect();
        let mut plan = JobPlan::new(self.seed, &fingerprints, self.runs);
        if self.shuffle_order {
            plan = plan.shuffled(self.seed ^ 0x0D0E);
        }

        let results = engine.execute(&plan, |ci| specs[ci]);

        // `execute` returns (cell, run)-ordered triples; distribute them.
        let mut samples: Vec<Vec<RunResult>> = vec![Vec::with_capacity(self.runs); cells.len()];
        for (ci, _, r) in results {
            samples[ci].push(r);
        }
        for (cell, runs) in cells.iter_mut().zip(samples) {
            cell.samples = runs;
        }

        ExperimentResults { cells, benchmark_name: self.benchmark.name.clone() }
    }

    /// The fully-bound spec for one cell (what the engine fingerprints,
    /// seeds and executes).
    fn spec_for<'a>(&'a self, cell: &'a Cell) -> RunSpec<'a> {
        RunSpec {
            service: &self.benchmark.service,
            server: &cell.server,
            client: &cell.client,
            generator: &self.benchmark.generator,
            link: &self.benchmark.link,
            qps: cell.qps,
            duration: self.duration,
            warmup: self.warmup,
        }
    }
}

impl ExperimentBuilder {
    /// Adds a client configuration (labelled LP/HP automatically for the
    /// Table II presets).
    pub fn client(mut self, config: MachineConfig) -> Self {
        self.inner.clients.push((config.label(), config));
        self
    }

    /// Adds a client configuration with an explicit label.
    pub fn client_labelled(mut self, label: impl Into<String>, config: MachineConfig) -> Self {
        self.inner.clients.push((label.into(), config));
        self
    }

    /// Adds a server scenario.
    pub fn server(mut self, scenario: ServerScenario) -> Self {
        self.inner.servers.push(scenario);
        self
    }

    /// Sets the QPS sweep.
    pub fn qps(mut self, qps: &[f64]) -> Self {
        self.inner.qps = qps.to_vec();
        self
    }

    /// Sets the number of runs per cell (the paper: 50).
    pub fn runs(mut self, runs: usize) -> Self {
        self.inner.runs = runs;
        self
    }

    /// Sets the per-run duration (the paper: 2 minutes).
    pub fn run_duration(mut self, duration: SimDuration) -> Self {
        self.inner.duration = duration;
        self.inner.warmup = duration / 10;
        self
    }

    /// Sets the experiment master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.inner.seed = seed;
        self
    }

    /// Enables or disables parallel cell execution (on by default;
    /// results are identical either way).
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.inner.parallel = parallel;
        self
    }

    /// Randomizes job execution order (OrderSage-style). Because seeds
    /// are bound to (cell, run) pairs, this cannot change results in the
    /// simulator — the flag exists to document and test that property.
    pub fn shuffle_order(mut self, shuffle: bool) -> Self {
        self.inner.shuffle_order = shuffle;
        self
    }

    /// Finalizes the experiment.
    pub fn build(self) -> Experiment {
        self.inner
    }
}

/// One matrix cell: a (client, server, qps) combination and its runs.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Label of the client configuration ("LP"/"HP"/custom).
    pub client_label: String,
    /// The client configuration.
    pub client: MachineConfig,
    /// Label of the server scenario.
    pub server_label: String,
    /// The server configuration.
    pub server: MachineConfig,
    /// Offered load.
    pub qps: f64,
    /// One [`RunResult`] per run.
    pub samples: Vec<RunResult>,
}

impl Cell {
    /// Statistical summary of this cell's runs.
    pub fn summary(&self) -> Summary {
        Summary::from_runs(&self.samples)
    }

    /// `"LP-SMToff"`-style key matching the paper's figure legends.
    pub fn key(&self) -> String {
        format!("{}-{}", self.client_label, self.server_label)
    }
}

/// All cells of an executed experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResults {
    cells: Vec<Cell>,
    benchmark_name: String,
}

impl ExperimentResults {
    /// The benchmark's name.
    pub fn benchmark_name(&self) -> &str {
        &self.benchmark_name
    }

    /// All cells, in (client, server, qps) declaration order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The cell for an exact (client, server, qps) coordinate.
    pub fn cell(&self, client_label: &str, server_label: &str, qps: f64) -> Option<&Cell> {
        self.cells.iter().find(|c| {
            c.client_label == client_label && c.server_label == server_label && (c.qps - qps).abs() < 1e-9
        })
    }

    /// All distinct QPS points, ascending.
    pub fn qps_points(&self) -> Vec<f64> {
        let mut v: Vec<f64> = Vec::new();
        for c in &self.cells {
            if !v.iter().any(|&q| (q - c.qps).abs() < 1e-9) {
                v.push(c.qps);
            }
        }
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_experiment() -> Experiment {
        let mut bench = Benchmark::memcached();
        bench.service = ServiceConfig::without_interference(ServiceKind::Memcached(KvConfig {
            preload_keys: 1_000,
            ..KvConfig::default()
        }));
        Experiment::builder(bench)
            .client(MachineConfig::low_power())
            .client(MachineConfig::high_performance())
            .server(ServerScenario::baseline())
            .qps(&[50_000.0])
            .runs(3)
            .run_duration(SimDuration::from_ms(30))
            .seed(11)
            .build()
    }

    #[test]
    fn matrix_has_expected_cells() {
        let results = tiny_experiment().run();
        assert_eq!(results.cells().len(), 2);
        assert_eq!(results.benchmark_name(), "memcached");
        let lp = results.cell("LP", "SMToff", 50_000.0).unwrap();
        assert_eq!(lp.samples.len(), 3);
        assert_eq!(lp.key(), "LP-SMToff");
        assert!(results.cell("XX", "SMToff", 50_000.0).is_none());
        assert_eq!(results.qps_points(), vec![50_000.0]);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let mut exp = tiny_experiment();
        exp.parallel = true;
        let par = exp.run();
        exp.parallel = false;
        let seq = exp.run();
        for (a, b) in par.cells().iter().zip(seq.cells()) {
            assert_eq!(a.samples, b.samples, "cell {} differs", a.key());
        }
    }

    #[test]
    fn shuffled_order_cannot_change_results() {
        let mut exp = tiny_experiment();
        let plain = exp.run();
        exp.shuffle_order = true;
        let shuffled = exp.run();
        for (a, b) in plain.cells().iter().zip(shuffled.cells()) {
            assert_eq!(a.samples, b.samples);
        }
    }

    #[test]
    fn seeds_differ_across_runs_and_cells() {
        let results = tiny_experiment().run();
        let lp = &results.cells()[0];
        assert_ne!(lp.samples[0], lp.samples[1], "runs must differ (fresh environment)");
        let hp = &results.cells()[1];
        assert_ne!(lp.samples[0], hp.samples[0], "cells must differ");
    }

    #[test]
    #[should_panic(expected = "at least one QPS")]
    fn empty_sweep_panics() {
        let bench = Benchmark::memcached();
        Experiment::builder(bench)
            .client(MachineConfig::low_power())
            .server(ServerScenario::baseline())
            .build()
            .run();
    }

    #[test]
    fn scenario_presets() {
        assert_eq!(ServerScenario::baseline().name, "SMToff");
        assert!(ServerScenario::smt_on().config.smt.enabled);
        assert!(ServerScenario::c1e_on().config.cstates.allows(tpv_hw::CState::C1E));
        let c = ServerScenario::custom("X", MachineConfig::server_baseline());
        assert_eq!(c.name, "X");
        // Benchmarks expose the right generators.
        assert_eq!(Benchmark::hdsearch().generator.timing, tpv_loadgen::TimingMode::BusyWait);
        assert_eq!(Benchmark::social_network().generator.connections, 20);
        assert!(Benchmark::synthetic(SimDuration::from_us(100)).name.contains("100"));
    }
}
