//! The execution engine: deterministic, parallel, cache-aware running of
//! simulation jobs.
//!
//! Everything that executes runs — [`Experiment`](crate::experiment::Experiment)
//! sweeps, the ready-made [`scenarios`](crate::scenarios) studies and the
//! artefact-regeneration suite in `tpv-bench` — funnels through this
//! module:
//!
//! * [`JobPlan`] enumerates the `(cell, run)` grid and binds each job to a
//!   seed derived from the master seed, the **content** of the cell and
//!   the run index. Because seeds depend on what a job *is* rather than
//!   where it sits in a sweep, execution order cannot change any result,
//!   and the same cell appearing in two different experiments (a shared
//!   baseline across figures, a sub-sweep re-run) draws identical seeds.
//! * [`Engine`] executes a plan either serially or on a self-scheduling
//!   pool of scoped threads (`std::thread::scope` — no external
//!   dependencies). Results are reassembled in `(cell, run)` order, so
//!   serial, parallel and shuffled execution are bit-identical. The
//!   scheduling core ([`Engine::execute_jobs`]) is payload-generic:
//!   single-client cells ([`Engine::execute`]) and fleet topologies
//!   ([`Engine::execute_topology`]) ride the same pool.
//! * [`RunCache`] memoizes results keyed by a [`RunSpec`] fingerprint and
//!   seed. Identical jobs shared across experiments — the paper's
//!   baseline cells appear in several figures — execute once per process
//!   when the artefact suite shares one cache.
//!
//! # Example
//!
//! Seeds are content-addressed: the same cell fingerprint draws the same
//! seeds wherever the cell sits in the plan, so reordering or sharing
//! cells across experiments cannot change any result:
//!
//! ```
//! use tpv_core::engine::{Engine, JobPlan};
//!
//! let plan = JobPlan::new(99, &[0xAAAA, 0xBBBB, 0xAAAA], 2);
//! let seeds: Vec<u64> = Engine::serial()
//!     .execute_jobs(&plan, |job| job.seed)
//!     .into_iter()
//!     .map(|(_cell, _run, seed)| seed)
//!     .collect();
//! assert_eq!(seeds[0..2], seeds[4..6]); // cells 0 and 2 share content
//! assert_ne!(seeds[0..2], seeds[2..4]); // cell 1 differs
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use tpv_sim::SimRng;

use crate::runtime::{run_once, run_topology, PhasedFleetResult, RunResult, RunSpec};
use crate::topology::{FleetResult, TopologyError, TopologySpec};

/// One schedulable unit of work: a single seeded run of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Job {
    /// Index of the cell this job belongs to (caller-defined order).
    pub cell: usize,
    /// Run index within the cell.
    pub run: usize,
    /// The seed `run_once` executes with.
    pub seed: u64,
    /// Content fingerprint of the cell's [`RunSpec`] (cache key half).
    pub fingerprint: u64,
}

/// The deterministic schedule of an experiment: every `(cell, run)` pair
/// with its derived seed.
#[derive(Debug, Clone)]
pub struct JobPlan {
    jobs: Vec<Job>,
    cells: usize,
    runs: usize,
}

impl JobPlan {
    /// Builds the plan for `fingerprints.len()` cells × `runs` runs.
    ///
    /// Seeds are a pure function of `(master_seed, cell fingerprint, run
    /// index)`: independent of cell position, sweep shape and execution
    /// order.
    ///
    /// Corollary: two cells with **identical content** (the same
    /// fingerprint twice in one plan) are the same jobs and produce
    /// bit-identical samples — duplicates are deduplicated, not
    /// replicated. An A/A comparison therefore needs distinct master
    /// seeds (or more runs per cell), not a repeated cell.
    pub fn new(master_seed: u64, fingerprints: &[u64], runs: usize) -> Self {
        let seeder = SimRng::seed_from_u64(master_seed);
        let mut jobs = Vec::with_capacity(fingerprints.len() * runs);
        for (cell, &fp) in fingerprints.iter().enumerate() {
            let cell_seeder = seeder.fork(fp);
            for run in 0..runs {
                let mut s = cell_seeder.fork(run as u64);
                jobs.push(Job { cell, run, seed: s.next_u64(), fingerprint: fp });
            }
        }
        JobPlan { jobs, cells: fingerprints.len(), runs }
    }

    /// Randomizes job execution order (OrderSage-style). Seeds travel
    /// with their jobs, so this cannot change any result — the method
    /// exists to document and test that property.
    pub fn shuffled(mut self, order_seed: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(order_seed);
        rng.shuffle(&mut self.jobs);
        self
    }

    /// The jobs in scheduled order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of cells the plan covers.
    pub fn cell_count(&self) -> usize {
        self.cells
    }

    /// Runs per cell.
    pub fn runs_per_cell(&self) -> usize {
        self.runs
    }
}

/// Counters describing how a [`RunCache`] performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Jobs answered from the cache.
    pub hits: u64,
    /// Jobs that had to execute.
    pub misses: u64,
    /// Distinct results currently stored.
    pub entries: usize,
}

/// A memoizing store of run results keyed by `(spec fingerprint, seed)`.
///
/// Shared (via [`Arc`]) across experiments, it deduplicates the baseline
/// cells that recur across the paper's figures: the same `(spec, seed)`
/// job executes once per process.
#[derive(Debug, Default)]
pub struct RunCache {
    map: Mutex<HashMap<(u64, u64), RunResult>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl RunCache {
    /// Creates an empty shareable cache.
    pub fn new() -> Arc<Self> {
        Arc::new(RunCache::default())
    }

    /// Hit/miss/occupancy counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.lock().expect("run cache poisoned").len(),
        }
    }

    /// Drops every stored result (counters are kept).
    pub fn clear(&self) {
        self.map.lock().expect("run cache poisoned").clear();
    }

    fn get(&self, key: (u64, u64)) -> Option<RunResult> {
        let found = self.map.lock().expect("run cache poisoned").get(&key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn insert(&self, key: (u64, u64), result: RunResult) {
        self.map.lock().expect("run cache poisoned").insert(key, result);
    }
}

/// FNV-1a over a value's debug representation — the content digest
/// behind [`fingerprint`], [`fingerprint_topology`] and per-node stream
/// keys.
pub(crate) fn fnv64_debug<T: std::fmt::Debug>(value: &T) -> u64 {
    struct Fnv(u64);
    impl std::fmt::Write for Fnv {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            for b in s.bytes() {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x100_0000_01b3);
            }
            Ok(())
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    write!(h, "{value:?}").expect("fingerprint formatting cannot fail");
    h.0
}

/// Content fingerprint of a [`RunSpec`]: a stable 64-bit digest of the
/// spec's full debug representation (configs, load, durations — not the
/// seed).
///
/// Two cells fingerprint equal exactly when every knob that can influence
/// `run_once` is equal, which is what makes the fingerprint a sound cache
/// key and a sound seed-derivation label.
pub fn fingerprint(spec: &RunSpec<'_>) -> u64 {
    fnv64_debug(spec)
}

/// Content fingerprint of a [`TopologySpec`]: the multi-node counterpart
/// of [`fingerprint`], digesting every node (label, machine, generator,
/// link, load) plus the shared service/server/window knobs. Used to
/// content-address fleet cells in a [`JobPlan`], so a fleet cell's seeds
/// are independent of its position in a study's sweep.
pub fn fingerprint_topology(spec: &TopologySpec<'_>) -> u64 {
    fnv64_debug(spec)
}

/// Content fingerprint of a controlled-run cell: the
/// [`ControlSpec`](crate::control::ControlSpec) (fleet, tier, window
/// geometry) plus the policy's stable name. Policies are identified by
/// name rather than digested structurally — a policy is code, and its
/// parameters belong to the study that instantiates it, so studies
/// comparing parameterizations should fold the parameters into `policy`
/// themselves.
pub fn fingerprint_control(spec: &crate::control::ControlSpec, policy: &str) -> u64 {
    fnv64_debug(&(spec, policy))
}

/// How an [`Engine`] schedules jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Parallelism {
    /// In-order on the calling thread.
    Serial,
    /// Self-scheduling pool of `n` scoped worker threads.
    Workers(usize),
}

/// The executor: runs a [`JobPlan`], optionally in parallel, optionally
/// through a shared [`RunCache`].
///
/// Determinism contract: for a fixed plan and specs, [`Engine::execute`]
/// returns bit-identical results whatever the parallelism, job order or
/// cache temperature — the paper's "same seed ⇒ same measurement"
/// property survives every execution strategy.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    parallelism: Option<Parallelism>,
    cache: Option<Arc<RunCache>>,
    pin: crate::pin::PinPolicy,
}

impl Engine {
    /// An engine using every available core.
    pub fn new() -> Self {
        Engine::default()
    }

    /// An engine that executes jobs in plan order on the calling thread.
    pub fn serial() -> Self {
        Engine { parallelism: Some(Parallelism::Serial), ..Engine::default() }
    }

    /// An engine with an explicit worker count (`1` behaves like
    /// [`Engine::serial`]).
    pub fn with_workers(workers: usize) -> Self {
        let p = if workers <= 1 { Parallelism::Serial } else { Parallelism::Workers(workers) };
        Engine { parallelism: Some(p), ..Engine::default() }
    }

    /// Attaches a shared run cache.
    pub fn with_cache(mut self, cache: Arc<RunCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Sets the worker placement policy ([`crate::pin::PinPolicy`]) for
    /// this engine's own job pool *and* the shard workers of
    /// [`Engine::execute_sharded`]. Off by default; results are
    /// bit-identical whatever the policy.
    pub fn with_pin_policy(mut self, pin: crate::pin::PinPolicy) -> Self {
        self.pin = pin;
        self
    }

    /// The configured worker placement policy.
    pub fn pin_policy(&self) -> crate::pin::PinPolicy {
        self.pin
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&Arc<RunCache>> {
        self.cache.as_ref()
    }

    /// The worker budget this engine was configured with (before being
    /// capped by a particular plan's job count).
    fn requested_workers(&self) -> usize {
        match self.parallelism {
            Some(Parallelism::Serial) => 1,
            Some(Parallelism::Workers(n)) => n,
            None => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
        }
    }

    fn effective_workers(&self, jobs: usize) -> usize {
        self.requested_workers().min(jobs.max(1))
    }

    /// Runs an arbitrary per-job function over every job of `plan` —
    /// serially or on the self-scheduling pool — and returns
    /// `(cell, run, result)` triples sorted in `(cell, run)` order,
    /// independent of scheduling.
    ///
    /// This is the engine's scheduling core; [`Engine::execute`] (cached
    /// `RunSpec` jobs) and [`Engine::execute_topology`] (fleet jobs) are
    /// thin layers over it. Use it directly for custom job payloads that
    /// should inherit the engine's determinism contract.
    pub fn execute_jobs<R, F>(&self, plan: &JobPlan, run: F) -> Vec<(usize, usize, R)>
    where
        R: Send,
        F: Fn(&Job) -> R + Sync,
    {
        let jobs = plan.jobs();
        let workers = self.effective_workers(jobs.len());
        let mut results: Vec<(usize, usize, R)> = if workers <= 1 {
            jobs.iter().map(|job| (job.cell, job.run, run(job))).collect()
        } else {
            let out = Mutex::new(Vec::with_capacity(jobs.len()));
            let next = AtomicUsize::new(0);
            let pin = self.pin;
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let (out, next, run) = (&out, &next, &run);
                    scope.spawn(move || {
                        pin.apply(w);
                        loop {
                            // Self-scheduling queue: each worker claims the
                            // next unclaimed job, so long cells cannot idle
                            // the pool.
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(job) = jobs.get(i) else { break };
                            let r = run(job);
                            out.lock().expect("engine results poisoned").push((job.cell, job.run, r));
                        }
                    });
                }
            });
            out.into_inner().expect("engine results poisoned")
        };
        results.sort_by_key(|&(cell, run, _)| (cell, run));
        results
    }

    /// Executes every job of `plan`, materialising each cell's spec with
    /// `spec_of`, and returns `(cell, run, result)` triples sorted in
    /// `(cell, run)` order — independent of scheduling.
    pub fn execute<'s, F>(&self, plan: &JobPlan, spec_of: F) -> Vec<(usize, usize, RunResult)>
    where
        F: Fn(usize) -> RunSpec<'s> + Sync,
    {
        self.execute_jobs(plan, |job| self.execute_job(job, &spec_of))
    }

    /// Executes every job of `plan` as a fleet run, materialising each
    /// cell's topology with `spec_of`.
    ///
    /// Fleet jobs bypass the [`RunCache`]: per-node payloads are large
    /// relative to an aggregate [`RunResult`] and fleet cells are
    /// study-specific, so memoization would trade memory for no reuse.
    /// Determinism is unchanged — seeds travel with the jobs.
    pub fn execute_topology<'s, F>(&self, plan: &JobPlan, spec_of: F) -> Vec<(usize, usize, FleetResult)>
    where
        F: Fn(usize) -> TopologySpec<'s> + Sync,
    {
        self.execute_jobs(plan, |job| run_topology(&spec_of(job.cell), job.seed))
    }

    /// Executes every job of `plan` as a **sharded** fleet run
    /// ([`crate::runtime::run_topology_sharded`]): the fleet result plus
    /// the per-shard breakdown.
    ///
    /// The engine's worker budget is split between the two levels of
    /// parallelism: the job pool takes as many workers as it has jobs,
    /// and whatever is left over parallelizes the shards *inside* each
    /// run — a plan with one job on an 8-way engine runs its shards 8
    /// wide, while a 50-job study keeps job-level parallelism and runs
    /// each job's shards serially. Results are bit-identical either way
    /// (see `run_topology_sharded`'s determinism contract). Like the
    /// other fleet entry points, sharded jobs bypass the [`RunCache`].
    pub fn execute_sharded<'s, F>(
        &self,
        plan: &JobPlan,
        spec_of: F,
    ) -> Vec<(usize, usize, crate::topology::ShardedFleetResult)>
    where
        F: Fn(usize) -> TopologySpec<'s> + Sync,
    {
        let outer = self.effective_workers(plan.jobs().len());
        let intra = (self.requested_workers() / outer.max(1)).max(1);
        self.execute_jobs(plan, |job| {
            crate::runtime::run_topology_sharded_with(&spec_of(job.cell), job.seed, intra, self.pin)
        })
    }

    /// Executes every job of `plan` as a phased fleet run
    /// ([`crate::runtime::run_phased_sharded`]): the fleet result plus
    /// the per-shard breakdown and pooled per-phase statistics over the
    /// topology's merged schedule.
    ///
    /// The worker budget splits like [`Engine::execute_sharded`]: the
    /// job pool takes as many workers as it has jobs, and the remainder
    /// parallelizes shards inside each run. Per-phase merges happen in
    /// canonical `(shard_key, shard_index)` order, so results are
    /// bit-identical at any split. Like [`Engine::execute_topology`],
    /// phased jobs bypass the [`RunCache`]; determinism is unchanged —
    /// seeds travel with the jobs.
    ///
    /// # Errors
    ///
    /// Every cell is validated *before* any job executes; a misconfigured
    /// cell (e.g. a phased rate plan with a NaN multiplier) returns its
    /// [`TopologyError`] instead of aborting mid-plan.
    pub fn execute_phased<'s, F>(
        &self,
        plan: &JobPlan,
        spec_of: F,
    ) -> Result<Vec<(usize, usize, PhasedFleetResult)>, TopologyError>
    where
        F: Fn(usize) -> TopologySpec<'s> + Sync,
    {
        for cell in 0..plan.cell_count() {
            spec_of(cell).validate()?;
        }
        let outer = self.effective_workers(plan.jobs().len());
        let intra = (self.requested_workers() / outer.max(1)).max(1);
        Ok(self.execute_jobs(plan, |job| {
            crate::runtime::run_phased_sharded_with(&spec_of(job.cell), job.seed, intra, self.pin)
                .expect("cell validated before execution")
        }))
    }

    /// Executes one traced run (fidelity diagnostics) through the engine.
    ///
    /// Traces are never cached — the payload is large and traced runs
    /// are one-off self-checks — but the measurement comes from the same
    /// deterministic `(spec, seed)` path the cache keys, so a traced
    /// run's [`RunResult`] equals its untraced twin bit for bit.
    pub fn execute_traced(
        &self,
        spec: &RunSpec<'_>,
        seed: u64,
        max_trace: usize,
    ) -> (RunResult, crate::runtime::RunTrace) {
        crate::runtime::run_traced(spec, seed, max_trace)
    }

    /// Runs one job, consulting the cache when one is attached.
    fn execute_job<'s, F>(&self, job: &Job, spec_of: &F) -> RunResult
    where
        F: Fn(usize) -> RunSpec<'s>,
    {
        let key = (job.fingerprint, job.seed);
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.get(key) {
                return hit;
            }
        }
        let result = run_once(&spec_of(job.cell), job.seed);
        if let Some(cache) = &self.cache {
            cache.insert(key, result.clone());
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpv_hw::MachineConfig;
    use tpv_loadgen::GeneratorSpec;
    use tpv_net::LinkConfig;
    use tpv_services::kv::KvConfig;
    use tpv_services::{ServiceConfig, ServiceKind};
    use tpv_sim::SimDuration;

    fn service() -> ServiceConfig {
        ServiceConfig::without_interference(ServiceKind::Memcached(KvConfig {
            preload_keys: 1_000,
            ..KvConfig::default()
        }))
    }

    struct SpecParts {
        service: ServiceConfig,
        client: MachineConfig,
        server: MachineConfig,
        generator: GeneratorSpec,
        link: LinkConfig,
    }

    fn parts(client: MachineConfig) -> SpecParts {
        SpecParts {
            service: service(),
            client,
            server: MachineConfig::server_baseline(),
            generator: GeneratorSpec::mutilate(),
            link: LinkConfig::cloudlab_lan(),
        }
    }

    fn spec_of(p: &SpecParts, qps: f64) -> RunSpec<'_> {
        RunSpec {
            service: &p.service,
            server: &p.server,
            client: &p.client,
            generator: &p.generator,
            link: &p.link,
            qps,
            duration: SimDuration::from_ms(20),
            warmup: SimDuration::from_ms(2),
        }
    }

    #[test]
    fn fingerprint_separates_content_not_identity() {
        let lp = parts(MachineConfig::low_power());
        let lp2 = parts(MachineConfig::low_power());
        let hp = parts(MachineConfig::high_performance());
        assert_eq!(fingerprint(&spec_of(&lp, 1000.0)), fingerprint(&spec_of(&lp2, 1000.0)));
        assert_ne!(fingerprint(&spec_of(&lp, 1000.0)), fingerprint(&spec_of(&hp, 1000.0)));
        assert_ne!(fingerprint(&spec_of(&lp, 1000.0)), fingerprint(&spec_of(&lp, 2000.0)));
    }

    #[test]
    fn plan_seeds_are_content_addressed() {
        let a = JobPlan::new(7, &[11, 22], 3);
        assert_eq!(a.jobs().len(), 6);
        assert_eq!(a.cell_count(), 2);
        assert_eq!(a.runs_per_cell(), 3);
        // Same fingerprint at a different position ⇒ same seeds.
        let b = JobPlan::new(7, &[99, 11], 3);
        let seeds_a: Vec<u64> = a.jobs().iter().filter(|j| j.fingerprint == 11).map(|j| j.seed).collect();
        let seeds_b: Vec<u64> = b.jobs().iter().filter(|j| j.fingerprint == 11).map(|j| j.seed).collect();
        assert_eq!(seeds_a, seeds_b);
        // Distinct runs and distinct cells get distinct seeds.
        let mut all: Vec<u64> = a.jobs().iter().map(|j| j.seed).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn shuffle_keeps_the_job_set() {
        let plan = JobPlan::new(1, &[5, 6, 7], 4);
        let mut original = plan.jobs().to_vec();
        let shuffled = plan.clone().shuffled(99);
        let mut reordered = shuffled.jobs().to_vec();
        original.sort_by_key(|j| (j.cell, j.run));
        reordered.sort_by_key(|j| (j.cell, j.run));
        assert_eq!(original, reordered);
    }

    #[test]
    fn engine_modes_agree_and_cache_replays() {
        let p = parts(MachineConfig::high_performance());
        let spec = spec_of(&p, 50_000.0);
        let plan = JobPlan::new(3, &[fingerprint(&spec)], 4);

        let serial = Engine::serial().execute(&plan, |_| spec);
        let parallel = Engine::with_workers(4).execute(&plan, |_| spec);
        assert_eq!(serial, parallel);

        let cache = RunCache::new();
        let engine = Engine::with_workers(4).with_cache(Arc::clone(&cache));
        let cold = engine.execute(&plan, |_| spec);
        assert_eq!(serial, cold);
        let after_cold = cache.stats();
        assert_eq!(after_cold.misses, 4);
        assert_eq!(after_cold.entries, 4);

        let warm = engine.execute(&plan, |_| spec);
        assert_eq!(serial, warm);
        let after_warm = cache.stats();
        assert_eq!(after_warm.hits, 4);
        assert_eq!(after_warm.misses, 4, "warm pass must not re-execute");

        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn execute_jobs_reassembles_in_cell_run_order() {
        let plan = JobPlan::new(5, &[1, 2, 3], 4).shuffled(17);
        // A cheap payload that records which job ran.
        let serial = Engine::serial().execute_jobs(&plan, |job| job.seed);
        let parallel = Engine::with_workers(4).execute_jobs(&plan, |job| job.seed);
        assert_eq!(serial, parallel, "scheduling must not reorder results");
        let coords: Vec<(usize, usize)> = serial.iter().map(|&(c, r, _)| (c, r)).collect();
        let mut sorted = coords.clone();
        sorted.sort_unstable();
        assert_eq!(coords, sorted, "results must arrive in (cell, run) order");
    }

    #[test]
    fn topology_execution_is_parallelism_invariant() {
        use crate::topology::{uniform_fleet, TopologySpec};
        use tpv_loadgen::GeneratorSpec;
        use tpv_net::LinkConfig;

        let service = service();
        let server = MachineConfig::server_baseline();
        let nodes = uniform_fleet(
            "agent",
            MachineConfig::high_performance(),
            GeneratorSpec::mutilate(),
            LinkConfig::cloudlab_lan(),
            60_000.0,
            3,
        );
        let topo = TopologySpec {
            shards: None,
            service: &service,
            server: &server,
            nodes: &nodes,
            duration: SimDuration::from_ms(25),
            warmup: SimDuration::from_ms(3),
            cohorts: &[],
        };
        let plan = JobPlan::new(9, &[fingerprint_topology(&topo)], 3);
        let serial = Engine::serial().execute_topology(&plan, |_| topo);
        let parallel = Engine::with_workers(4).execute_topology(&plan, |_| topo);
        assert_eq!(serial, parallel, "fleet runs must be bit-identical across parallelism");
        assert_eq!(serial.len(), 3);
        assert_eq!(serial[0].2.nodes.len(), 3);
        // Distinct seeds per run: fresh environments per fleet run.
        assert_ne!(serial[0].2.aggregate, serial[1].2.aggregate);
    }

    #[test]
    fn topology_fingerprint_is_content_addressed() {
        use crate::topology::{uniform_fleet, ClientNode, TopologySpec};
        use tpv_loadgen::GeneratorSpec;
        use tpv_net::LinkConfig;

        fn spec<'a>(
            service: &'a ServiceConfig,
            server: &'a MachineConfig,
            nodes: &'a [ClientNode],
        ) -> TopologySpec<'a> {
            TopologySpec {
                shards: None,
                service,
                server,
                nodes,
                duration: SimDuration::from_ms(20),
                warmup: SimDuration::from_ms(2),
                cohorts: &[],
            }
        }

        let svc = service();
        let server = MachineConfig::server_baseline();
        let mk = |count: usize, qps: f64| {
            uniform_fleet(
                "n",
                MachineConfig::high_performance(),
                GeneratorSpec::mutilate(),
                LinkConfig::cloudlab_lan(),
                qps,
                count,
            )
        };
        let a = mk(2, 50_000.0);
        let b = mk(2, 50_000.0);
        let c = mk(4, 50_000.0);
        let fa = fingerprint_topology(&spec(&svc, &server, &a));
        assert_eq!(fa, fingerprint_topology(&spec(&svc, &server, &b)));
        assert_ne!(fa, fingerprint_topology(&spec(&svc, &server, &c)));
    }
}
