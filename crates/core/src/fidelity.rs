//! Workload-fidelity self-checks, in the spirit of Lancet (Kogias et al.,
//! ATC '19 — discussed in the paper's related work).
//!
//! An open-loop generator is only as good as its inter-arrival schedule.
//! Lancet's insight: the generator should *check its own output* — is the
//! request stream actually following the target distribution, and are the
//! samples independent and stationary? This module runs those checks on a
//! [`RunTrace`]:
//!
//! * **dispersion** — for exponential (Poisson) schedules, per-connection
//!   wire-departure gaps must have a coefficient of variation ≈ 1. A
//!   sleepy client batches late sends, pushing dispersion up.
//! * **independence** — lag-1 Spearman correlation of consecutive
//!   latencies (Lancet's inter-sample independence check).
//! * **stationarity/randomness** — the turning-point test on the latency
//!   series.
//! * **schedule adherence** — the fraction of sends that slipped their
//!   scheduled time (from [`RunResult`]).
//! * **drain completeness** — in-window requests cut off by the drain
//!   horizon ([`RunResult::truncated_inflight`]) right-censor the tail;
//!   a run that truncates anything is not faithful.

use tpv_stats::desc;
use tpv_stats::iid::{spearman_lag1, turning_point_test};

use crate::runtime::{RunResult, RunTrace};

/// Outcome of the fidelity assessment.
#[derive(Debug, Clone)]
pub struct FidelityReport {
    /// Coefficient of variation of per-connection wire-departure gaps
    /// (1.0 = perfectly exponential).
    pub dispersion_cv: Option<f64>,
    /// Whether dispersion is within the accepted band around 1.
    pub dispersion_ok: bool,
    /// Lag-1 Spearman rank correlation of the latency series.
    pub lag1_rho: Option<f64>,
    /// Whether consecutive latencies look independent.
    pub independence_ok: bool,
    /// Two-sided p-value of the turning-point test on latencies.
    pub turning_point_p: Option<f64>,
    /// Whether the latency series passes the randomness check.
    pub randomness_ok: bool,
    /// Fraction of sends that slipped their schedule.
    pub late_send_fraction: f64,
    /// Whether the send schedule was honoured.
    pub schedule_ok: bool,
    /// In-window requests cut off by the drain horizon (from
    /// [`RunResult::truncated_inflight`]).
    pub truncated_inflight: u64,
    /// Whether the run drained fully — a non-zero truncation count means
    /// the recorded tail is right-censored and p99/max understate it.
    pub drain_ok: bool,
}

impl FidelityReport {
    /// True when every individual check passed — the run's measurements
    /// can be trusted to represent the configured workload.
    pub fn workload_faithful(&self) -> bool {
        self.dispersion_ok && self.independence_ok && self.randomness_ok && self.schedule_ok && self.drain_ok
    }

    /// Human-readable one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "dispersion cv={} ({}), lag1 rho={} ({}), turning-point p={} ({}), late sends {:.1}% ({}), truncated in-flight {} ({})",
            self.dispersion_cv.map(|v| format!("{v:.2}")).unwrap_or_else(|| "n/a".into()),
            if self.dispersion_ok { "ok" } else { "FAIL" },
            self.lag1_rho.map(|v| format!("{v:.3}")).unwrap_or_else(|| "n/a".into()),
            if self.independence_ok { "ok" } else { "FAIL" },
            self.turning_point_p.map(|v| format!("{v:.3}")).unwrap_or_else(|| "n/a".into()),
            if self.randomness_ok { "ok" } else { "FAIL" },
            self.late_send_fraction * 100.0,
            if self.schedule_ok { "ok" } else { "FAIL" },
            self.truncated_inflight,
            if self.drain_ok { "ok" } else { "FAIL" },
        )
    }
}

/// Tolerance band for the exponential-dispersion check.
const DISPERSION_BAND: (f64, f64) = (0.80, 1.25);
/// Maximum |lag-1 Spearman rho| considered independent.
const MAX_LAG1_RHO: f64 = 0.25;
/// Minimum turning-point p-value considered random.
const MIN_TP_P: f64 = 0.01;
/// Maximum tolerated late-send fraction.
const MAX_LATE_FRACTION: f64 = 0.10;

/// Runs the Lancet-style self-checks over a traced run.
///
/// Checks that cannot be computed (too few traced samples) count as
/// passing, matching Lancet's "insufficient evidence" behaviour.
pub fn assess(result: &RunResult, trace: &RunTrace) -> FidelityReport {
    // Per-connection wire-departure gaps.
    let mut per_conn: std::collections::HashMap<u32, Vec<f64>> = std::collections::HashMap::new();
    for &(conn, at) in &trace.wire_departures {
        per_conn.entry(conn).or_default().push(at.as_us());
    }
    let mut gaps: Vec<f64> = Vec::new();
    for times in per_conn.values() {
        for w in times.windows(2) {
            if w[1] > w[0] {
                gaps.push(w[1] - w[0]);
            }
        }
    }
    let dispersion_cv = if gaps.len() >= 30 { Some(desc::coefficient_of_variation(&gaps)) } else { None };
    let dispersion_ok =
        dispersion_cv.map(|cv| (DISPERSION_BAND.0..=DISPERSION_BAND.1).contains(&cv)).unwrap_or(true);

    let lag1 = spearman_lag1(&trace.latencies_us);
    let lag1_rho = lag1.map(|s| s.rho);
    let independence_ok = lag1_rho.map(|r| r.abs() <= MAX_LAG1_RHO).unwrap_or(true);

    let tp = turning_point_test(&trace.latencies_us);
    let turning_point_p = tp.map(|t| t.p_value);
    let randomness_ok = turning_point_p.map(|p| p >= MIN_TP_P).unwrap_or(true);

    let schedule_ok = result.late_send_fraction <= MAX_LATE_FRACTION;
    let drain_ok = result.truncated_inflight == 0;

    FidelityReport {
        dispersion_cv,
        dispersion_ok,
        lag1_rho,
        independence_ok,
        turning_point_p,
        randomness_ok,
        late_send_fraction: result.late_send_fraction,
        schedule_ok,
        truncated_inflight: result.truncated_inflight,
        drain_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::RunSpec;
    use tpv_hw::MachineConfig;
    use tpv_loadgen::GeneratorSpec;
    use tpv_net::LinkConfig;
    use tpv_services::kv::KvConfig;
    use tpv_services::{ServiceConfig, ServiceKind};
    use tpv_sim::SimDuration;

    use crate::engine::Engine;

    fn traced(client: MachineConfig, qps: f64, seed: u64) -> (RunResult, RunTrace) {
        let service = ServiceConfig::without_interference(ServiceKind::Memcached(KvConfig {
            preload_keys: 1_000,
            ..KvConfig::default()
        }));
        let server = MachineConfig::server_baseline();
        let generator = GeneratorSpec::mutilate();
        let link = LinkConfig::cloudlab_lan();
        let spec = RunSpec {
            service: &service,
            server: &server,
            client: &client,
            generator: &generator,
            link: &link,
            qps,
            duration: SimDuration::from_ms(80),
            warmup: SimDuration::from_ms(10),
        };
        Engine::serial().execute_traced(&spec, seed, 20_000)
    }

    #[test]
    fn hp_client_passes_the_self_checks() {
        let (result, trace) = traced(MachineConfig::high_performance(), 100_000.0, 1);
        assert!(!trace.wire_departures.is_empty());
        assert!(!trace.latencies_us.is_empty());
        let report = assess(&result, &trace);
        assert!(report.schedule_ok, "{}", report.summary());
        assert!(report.dispersion_ok, "{}", report.summary());
        assert!(report.workload_faithful(), "{}", report.summary());
    }

    #[test]
    fn lp_client_fails_the_schedule_check() {
        // The paper's risky scenario: a time-sensitive generator on an
        // untuned machine disrupts its own schedule.
        let (result, trace) = traced(MachineConfig::low_power(), 100_000.0, 2);
        let report = assess(&result, &trace);
        assert!(result.late_send_fraction > 0.10, "LP should slip sends: {}", report.summary());
        assert!(!report.workload_faithful(), "{}", report.summary());
    }

    #[test]
    fn censored_tail_fails_the_drain_check() {
        let (mut result, trace) = traced(MachineConfig::high_performance(), 100_000.0, 4);
        result.truncated_inflight = 17;
        let report = assess(&result, &trace);
        assert!(!report.drain_ok);
        assert_eq!(report.truncated_inflight, 17);
        assert!(!report.workload_faithful(), "{}", report.summary());
        assert!(report.summary().contains("truncated in-flight 17 (FAIL)"));
    }

    #[test]
    fn empty_trace_counts_as_passing() {
        let (result, _) = traced(MachineConfig::high_performance(), 50_000.0, 3);
        let empty = RunTrace::default();
        let report = assess(&result, &empty);
        assert!(report.dispersion_cv.is_none());
        assert!(report.workload_faithful());
        assert!(report.summary().contains("n/a"));
    }
}
