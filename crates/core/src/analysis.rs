//! Turning run samples into conclusions — and detecting when two client
//! configurations *disagree* (Findings 1–2).
//!
//! The decision rule is the paper's: per-cell metrics are medians of
//! per-run samples with **non-parametric 95 % CIs** (Eq. 1/2); two
//! configurations differ only when their CIs do not overlap.

use tpv_sim::{SimDuration, SimRng};
use tpv_stats::ci::{nonparametric_median_ci, ConfidenceInterval};
use tpv_stats::desc;
use tpv_stats::normality::{shapiro_wilk, ShapiroWilk};
use tpv_stats::repetitions::{confirm, jain_sample_size_of, ConfirmConfig, ConfirmOutcome};

use crate::runtime::RunResult;

/// Statistical summary of one cell's runs.
#[derive(Debug, Clone)]
pub struct Summary {
    avg_us: Vec<f64>,
    p99_us: Vec<f64>,
    level: f64,
}

impl Summary {
    /// Builds the summary from per-run results at 95 % confidence.
    pub fn from_runs(runs: &[RunResult]) -> Self {
        Summary {
            avg_us: runs.iter().map(|r| r.avg_us()).collect(),
            p99_us: runs.iter().map(|r| r.p99_us()).collect(),
            level: 0.95,
        }
    }

    /// Number of runs.
    pub fn runs(&self) -> usize {
        self.avg_us.len()
    }

    /// Per-run average-latency samples (µs).
    pub fn avg_samples_us(&self) -> &[f64] {
        &self.avg_us
    }

    /// Per-run p99-latency samples (µs).
    pub fn p99_samples_us(&self) -> &[f64] {
        &self.p99_us
    }

    /// Median of per-run average latencies (µs) — the paper's reported
    /// "Average Response Time (median)".
    pub fn avg_median_us(&self) -> f64 {
        desc::median(&self.avg_us)
    }

    /// Median of per-run p99 latencies (µs).
    pub fn p99_median_us(&self) -> f64 {
        desc::median(&self.p99_us)
    }

    /// Mean of per-run average latencies (µs) (used for the "slowdown
    /// (avg)" panels).
    pub fn avg_mean_us(&self) -> f64 {
        desc::mean(&self.avg_us)
    }

    /// Mean of per-run p99 latencies (µs).
    pub fn p99_mean_us(&self) -> f64 {
        desc::mean(&self.p99_us)
    }

    /// Standard deviation of per-run average latencies (µs) — the Fig. 5
    /// metric.
    pub fn avg_std_dev_us(&self) -> f64 {
        desc::std_dev(&self.avg_us)
    }

    /// Non-parametric CI of the median average latency, when enough runs
    /// exist.
    pub fn avg_ci(&self) -> Option<ConfidenceInterval> {
        nonparametric_median_ci(&self.avg_us, self.level)
    }

    /// Non-parametric CI of the median p99 latency.
    pub fn p99_ci(&self) -> Option<ConfidenceInterval> {
        nonparametric_median_ci(&self.p99_us, self.level)
    }

    /// Shapiro–Wilk normality test over the per-run averages (Fig. 8).
    pub fn shapiro_avg(&self) -> Option<ShapiroWilk> {
        shapiro_wilk(&self.avg_us).ok()
    }
}

/// The outcome of comparing a variant against a baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Variant is faster: its CI lies entirely below the baseline's.
    Faster,
    /// Variant is slower: its CI lies entirely above the baseline's.
    Slower,
    /// CIs overlap — the paper's "same performance".
    Indistinguishable,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Faster => write!(f, "faster"),
            Verdict::Slower => write!(f, "slower"),
            Verdict::Indistinguishable => write!(f, "same"),
        }
    }
}

/// Comparison of a variant server scenario against a baseline, as seen by
/// one client configuration.
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// `baseline_avg / variant_avg` (>1 ⇒ variant faster), from means as
    /// in the paper's slowdown panels.
    pub speedup_avg: f64,
    /// `baseline_p99 / variant_p99`.
    pub speedup_p99: f64,
    /// CI-overlap verdict on average latency.
    pub verdict_avg: Verdict,
    /// CI-overlap verdict on p99 latency.
    pub verdict_p99: Verdict,
}

fn verdict(baseline: Option<ConfidenceInterval>, variant: Option<ConfidenceInterval>) -> Verdict {
    match (baseline, variant) {
        (Some(b), Some(v)) => {
            if v.overlaps(&b) {
                Verdict::Indistinguishable
            } else if v.high < b.low {
                Verdict::Faster
            } else {
                Verdict::Slower
            }
        }
        // Without CIs (too few runs) nothing can be claimed.
        _ => Verdict::Indistinguishable,
    }
}

/// Compares a variant against a baseline (the §V-A studies).
pub fn compare(baseline: &Summary, variant: &Summary) -> Comparison {
    Comparison {
        speedup_avg: safe_ratio(baseline.avg_mean_us(), variant.avg_mean_us()),
        speedup_p99: safe_ratio(baseline.p99_mean_us(), variant.p99_mean_us()),
        verdict_avg: verdict(baseline.avg_ci(), variant.avg_ci()),
        verdict_p99: verdict(baseline.p99_ci(), variant.p99_ci()),
    }
}

fn safe_ratio(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        f64::NAN
    } else {
        a / b
    }
}

/// Finding 2's conflict detector: do two clients draw different
/// conclusions about the same server feature?
///
/// A conflict is any disagreement between definitive verdicts, or a
/// definitive verdict against an "indistinguishable" one (the paper's C1E
/// case: the LP client reports a slowdown the HP client says is not
/// there).
pub fn conclusions_conflict(a: Verdict, b: Verdict) -> bool {
    a != b
}

/// One row of the paper's Table IV: how many iterations this cell needs.
#[derive(Debug, Clone, Copy)]
pub struct IterationEstimate {
    /// Jain's parametric estimate (Eq. 3) at 1 % error, 95 % confidence.
    pub parametric: usize,
    /// The CONFIRM estimate.
    pub confirm: ConfirmOutcome,
    /// Whether the per-run averages pass Shapiro–Wilk at α = 0.05.
    pub shapiro_pass: Option<bool>,
}

/// Computes the Table IV estimates for a cell's per-run averages.
pub fn iteration_estimate(summary: &Summary, rng: &mut SimRng) -> IterationEstimate {
    let xs = summary.avg_samples_us();
    let parametric = if xs.len() >= 2 { jain_sample_size_of(xs, 1.0, 0.95) } else { 1 };
    let confirm_out = confirm(xs, &ConfirmConfig::default(), rng);
    let shapiro_pass = summary.shapiro_avg().map(|s| !s.rejects_normality(0.05));
    IterationEstimate { parametric, confirm: confirm_out, shapiro_pass }
}

/// §V-C's "experimental evaluation time": iterations × run length.
pub fn evaluation_time(iterations: usize, run_duration: SimDuration) -> SimDuration {
    run_duration * iterations as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpv_sim::SimDuration;

    fn runs_with_avgs(avgs: &[f64]) -> Vec<RunResult> {
        avgs.iter()
            .map(|&a| RunResult {
                avg: SimDuration::from_us_f64(a),
                p50: SimDuration::from_us_f64(a),
                p99: SimDuration::from_us_f64(a * 2.0),
                max: SimDuration::from_us_f64(a * 3.0),
                std_dev: SimDuration::from_us_f64(1.0),
                samples: 1000,
                achieved_qps: 1000.0,
                target_qps: 1000.0,
                late_send_fraction: 0.0,
                mean_send_slip: SimDuration::ZERO,
                client_wakes: [0; 4],
                client_energy_core_secs: 0.0,
                truncated_inflight: 0,
            })
            .collect()
    }

    #[test]
    fn summary_medians_and_cis() {
        let avgs: Vec<f64> = (1..=50).map(|i| 100.0 + (i % 10) as f64).collect();
        let s = Summary::from_runs(&runs_with_avgs(&avgs));
        assert_eq!(s.runs(), 50);
        assert!((s.avg_median_us() - desc_median(&avgs)).abs() < 1e-9);
        let ci = s.avg_ci().unwrap();
        assert!(ci.contains(s.avg_median_us()));
        assert!(s.p99_median_us() > s.avg_median_us());
        assert!(s.avg_std_dev_us() > 0.0);
        assert!(s.shapiro_avg().is_some());
    }

    fn desc_median(xs: &[f64]) -> f64 {
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        (v[24] + v[25]) / 2.0
    }

    #[test]
    fn verdicts_follow_ci_overlap() {
        let slow = Summary::from_runs(&runs_with_avgs(
            &[200.0, 201.0, 199.0, 200.5, 199.5, 200.2, 199.8, 200.1, 199.9, 200.0].repeat(3),
        ));
        let fast = Summary::from_runs(&runs_with_avgs(
            &[100.0, 101.0, 99.0, 100.5, 99.5, 100.2, 99.8, 100.1, 99.9, 100.0].repeat(3),
        ));
        let cmp = compare(&slow, &fast);
        assert_eq!(cmp.verdict_avg, Verdict::Faster);
        assert!(cmp.speedup_avg > 1.9);
        let reverse = compare(&fast, &slow);
        assert_eq!(reverse.verdict_avg, Verdict::Slower);
        assert!(reverse.speedup_avg < 0.6);
        let same = compare(&fast, &fast);
        assert_eq!(same.verdict_avg, Verdict::Indistinguishable);
        assert!((same.speedup_avg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlapping_cis_are_indistinguishable() {
        // Wide noise: medians differ slightly but CIs overlap.
        let a: Vec<f64> = (0..30).map(|i| 100.0 + (i * 7 % 30) as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| 103.0 + (i * 11 % 30) as f64).collect();
        let cmp = compare(&Summary::from_runs(&runs_with_avgs(&a)), &Summary::from_runs(&runs_with_avgs(&b)));
        assert_eq!(cmp.verdict_avg, Verdict::Indistinguishable);
    }

    #[test]
    fn too_few_runs_never_claims_a_difference() {
        let a = Summary::from_runs(&runs_with_avgs(&[100.0, 100.0, 100.0]));
        let b = Summary::from_runs(&runs_with_avgs(&[500.0, 500.0, 500.0]));
        // 3 runs cannot form a 95 % non-parametric CI (Eq. 1/2).
        assert_eq!(compare(&a, &b).verdict_avg, Verdict::Indistinguishable);
    }

    #[test]
    fn conflict_detection_matches_finding_2() {
        assert!(conclusions_conflict(Verdict::Slower, Verdict::Indistinguishable));
        assert!(conclusions_conflict(Verdict::Faster, Verdict::Slower));
        assert!(!conclusions_conflict(Verdict::Faster, Verdict::Faster));
        assert!(!conclusions_conflict(Verdict::Indistinguishable, Verdict::Indistinguishable));
    }

    #[test]
    fn iteration_estimates_track_noise() {
        let mut rng = SimRng::seed_from_u64(1);
        let tight: Vec<f64> = (0..50).map(|i| 100.0 + 0.01 * (i % 5) as f64).collect();
        let est = iteration_estimate(&Summary::from_runs(&runs_with_avgs(&tight)), &mut rng);
        assert!(est.parametric <= 2, "parametric {}", est.parametric);
        assert_eq!(est.confirm, ConfirmOutcome::Converged(10));

        let mut noisy = Vec::new();
        let mut r2 = SimRng::seed_from_u64(2);
        for _ in 0..50 {
            noisy.push(100.0 * (1.0 + 0.1 * (r2.next_f64() - 0.5)));
        }
        let est2 = iteration_estimate(&Summary::from_runs(&runs_with_avgs(&noisy)), &mut rng);
        assert!(est2.parametric > est.parametric);
    }

    #[test]
    fn evaluation_time_scales_with_iterations() {
        let t = evaluation_time(288, SimDuration::from_secs(120));
        assert_eq!(t.as_secs(), 288.0 * 120.0);
        assert_eq!(evaluation_time(0, SimDuration::from_secs(120)), SimDuration::ZERO);
    }

    #[test]
    fn verdict_display() {
        assert_eq!(Verdict::Faster.to_string(), "faster");
        assert_eq!(Verdict::Slower.to_string(), "slower");
        assert_eq!(Verdict::Indistinguishable.to_string(), "same");
    }
}
