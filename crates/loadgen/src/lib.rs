//! # tpv-loadgen — workload generators (§II taxonomy)
//!
//! The paper classifies workload generators along three axes, all of which
//! are first-class types here:
//!
//! * **Loop mode** ([`LoopMode`]): *open-loop* generators model infinitely
//!   many clients sending on an inter-arrival schedule; *closed-loop*
//!   generators bound outstanding requests.
//! * **Inter-arrival timing** ([`TimingMode`]): *time-sensitive* block-wait
//!   loops sleep until the next send is due (mutilate, wrk2) — a sleeping
//!   client core must wake first, disrupting the schedule; *time-insensitive*
//!   busy-wait loops poll for elapsed time (the µSuite client), keeping the
//!   schedule exact at the cost of a hot core.
//! * **Point of measurement** ([`PointOfMeasurement`]): where the response
//!   timestamp is taken — NIC, kernel, or inside the generator (in-app,
//!   what every surveyed generator does).
//!
//! [`ClientSide`] instantiates the taxonomy on a concrete client machine
//! ([`tpv_hw::MachineConfig`]): generator threads are
//! [`tpv_hw::CoreResource`]s, so the LP/HP configuration difference acts on
//! every send and receive exactly as in the paper.
//!
//! # Example
//!
//! ```
//! use tpv_loadgen::{ClientSide, GeneratorSpec};
//! use tpv_hw::MachineConfig;
//! use tpv_sim::{SimRng, SimTime};
//!
//! let mut rng = SimRng::seed_from_u64(1);
//! let lp = MachineConfig::low_power();
//! let env = lp.draw_environment(&mut rng);
//! let mut client = ClientSide::new(GeneratorSpec::mutilate(), &lp, &env);
//!
//! // A send due at t=5ms on an idle LP client leaves late: the thread
//! // must wake from a deep C-state first.
//! let plan = client.plan_send(0, SimTime::from_ms(5), &mut rng);
//! assert!(plan.wire > SimTime::from_ms(5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod rate;

pub use rate::PhasedRate;

use serde::{Deserialize, Serialize};
use tpv_hw::{CoreResource, MachineConfig, RunEnvironment};
use tpv_net::StackCosts;
use tpv_sim::dist::{Exponential, LogNormal, Sampler};
use tpv_sim::{SimDuration, SimRng, SimTime};

/// Open vs closed loop (§II "workload generator design").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoopMode {
    /// Open loop: sends follow the inter-arrival schedule regardless of
    /// outstanding responses (models infinite clients).
    Open,
    /// Closed loop: each connection waits for its response (plus think
    /// time) before sending again (models finite blocking clients).
    Closed,
}

/// How the inter-arrival wait is implemented (§II; the axis the paper's
/// recommendations hinge on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimingMode {
    /// Time-sensitive: block until the next send is due (event loop with
    /// timers). Sleeping cores disrupt the schedule on wake.
    BlockWait,
    /// Time-insensitive: spin, polling for elapsed time. The schedule is
    /// exact; the arrival core never sleeps.
    BusyWait,
}

/// Where the response timestamp is taken (§II "points of measurement").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PointOfMeasurement {
    /// Hardware timestamp at the NIC (e.g. Lancet's hardware mode).
    Nic,
    /// After kernel RX processing, before the application is scheduled.
    Kernel,
    /// Inside the workload generator — "with most typical workload
    /// generators, the measurement point resides within the workload
    /// generator itself".
    InApp,
}

/// Inter-arrival distribution family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalKind {
    /// Poisson process (exponential gaps) — mutilate, wrk2, µSuite.
    Exponential,
    /// Fixed gaps (paced).
    Deterministic,
    /// Log-normal gaps with the given log-space sigma (bursty).
    LogNormal(f64),
}

/// A per-connection arrival schedule generator.
///
/// The gap distribution is built once at construction (not per draw): a
/// `next_gap` call on the hot send path is one RNG transform with no
/// set-up arithmetic. The drawn gaps are identical to constructing the
/// distribution per draw — the parameters are a pure function of
/// `(kind, mean_gap)`.
#[derive(Debug, Clone, Copy)]
pub struct ArrivalProcess {
    mean_gap: SimDuration,
    sampler: GapSampler,
}

/// Prebuilt gap distribution of an [`ArrivalProcess`].
#[derive(Debug, Clone, Copy)]
enum GapSampler {
    Exponential(Exponential),
    Deterministic,
    LogNormal(LogNormal),
}

impl ArrivalProcess {
    /// An arrival process with the given mean inter-arrival gap.
    ///
    /// # Panics
    ///
    /// Panics if `mean_gap` is zero.
    pub fn new(kind: ArrivalKind, mean_gap: SimDuration) -> Self {
        assert!(!mean_gap.is_zero(), "arrival process needs a positive mean gap");
        let sampler = match kind {
            ArrivalKind::Exponential => GapSampler::Exponential(Exponential::with_mean(mean_gap.as_us())),
            ArrivalKind::Deterministic => GapSampler::Deterministic,
            ArrivalKind::LogNormal(sigma) => {
                GapSampler::LogNormal(LogNormal::with_mean(mean_gap.as_us(), sigma))
            }
        };
        ArrivalProcess { mean_gap, sampler }
    }

    /// The superposition of `members` independent copies of a `(kind,
    /// mean_gap)` process: one process whose mean gap is `mean_gap /
    /// members`.
    ///
    /// For [`ArrivalKind::Exponential`] this is exact (k Poisson streams
    /// of rate λ are one Poisson stream of rate kλ) — the identity behind
    /// cohort-compressed fleets. For the other kinds it preserves the
    /// pooled mean rate but not the pooled gap distribution.
    /// `superposed(kind, gap, 1)` equals `new(kind, gap)`.
    ///
    /// # Panics
    ///
    /// Panics if `members` is zero or `mean_gap` is zero.
    pub fn superposed(kind: ArrivalKind, mean_gap: SimDuration, members: u32) -> Self {
        assert!(members > 0, "superposition needs at least one member process");
        ArrivalProcess::new(kind, mean_gap.scale(1.0 / f64::from(members)))
    }

    /// Draws the gap to the next send.
    pub fn next_gap(&self, rng: &mut SimRng) -> SimDuration {
        match &self.sampler {
            GapSampler::Exponential(dist) => dist.sample_us(rng),
            GapSampler::Deterministic => self.mean_gap,
            GapSampler::LogNormal(dist) => dist.sample_us(rng),
        }
    }

    /// Raw `[0, 1)` uniforms one gap draw consumes: 1 (exponential),
    /// 2 (log-normal Box–Muller pair) or 0 (deterministic pacing draws
    /// nothing). The batch layer ([`GapBuffer`]) sizes its pre-draws by
    /// this, and the draw-count conservation tests pin it.
    pub fn uniforms_per_gap(&self) -> usize {
        match self.sampler {
            GapSampler::Exponential(_) => 1,
            GapSampler::Deterministic => 0,
            GapSampler::LogNormal(_) => 2,
        }
    }

    /// Transforms exactly [`uniforms_per_gap`](Self::uniforms_per_gap)
    /// pre-drawn raw uniforms into a gap — the identical arithmetic
    /// [`next_gap`](Self::next_gap) runs on freshly drawn uniforms, so
    /// pre-drawing on the same stream in the same order is bit-identical
    /// to sequential sampling.
    ///
    /// # Panics
    ///
    /// Panics if `units` is shorter than `uniforms_per_gap()`.
    pub fn gap_from_units(&self, units: &[f64]) -> SimDuration {
        match &self.sampler {
            GapSampler::Exponential(dist) => SimDuration::from_us_f64(dist.from_unit(units[0])),
            GapSampler::Deterministic => self.mean_gap,
            GapSampler::LogNormal(dist) => SimDuration::from_us_f64(dist.from_units(units[0], units[1])),
        }
    }

    /// The configured mean gap.
    pub fn mean_gap(&self) -> SimDuration {
        self.mean_gap
    }
}

/// Gaps per [`GapBuffer`] refill batch.
const GAP_BATCH: usize = 64;

/// Batched pre-sampling of arrival gaps.
///
/// Pre-drawing the next `GAP_BATCH × uniforms_per_gap` uniforms on the
/// arrival stream and transforming them in one contiguous loop is
/// bit-identical to drawing per send — the stream order is unchanged,
/// and [`ArrivalProcess::gap_from_units`] is the same arithmetic as
/// [`ArrivalProcess::next_gap`] — but it amortizes RNG state updates
/// and lets the polynomial kernels run over a flat buffer.
///
/// The buffer keeps the *raw* uniforms alongside the transformed gaps:
/// when a phase boundary swaps the arrival process (a rate step changes
/// the mean gap), [`reconfigure`](Self::reconfigure) re-transforms the
/// unconsumed tail under the new process, which is exactly what scalar
/// sampling would have produced at consumption time. The arrival *kind*
/// of a node never changes across phases (only its mean), so the
/// uniforms-per-gap stride is a per-node constant — asserted on every
/// reconfigure.
#[derive(Debug, Clone, Default)]
pub struct GapBuffer {
    raw: Vec<f64>,
    gaps: Vec<SimDuration>,
    cursor: usize,
    filled: usize,
}

impl GapBuffer {
    /// An empty buffer; the first [`next_gap`](Self::next_gap) fills it.
    pub fn new() -> Self {
        GapBuffer::default()
    }

    /// The next gap, from the buffer — refilling it with a batched
    /// pre-draw when empty. Deterministic pacing consumes no uniforms
    /// and bypasses the buffer entirely.
    pub fn next_gap(&mut self, process: &ArrivalProcess, rng: &mut SimRng) -> SimDuration {
        let stride = process.uniforms_per_gap();
        if stride == 0 {
            return process.next_gap(rng);
        }
        if self.cursor == self.filled {
            self.refill(process, stride, rng);
        }
        let gap = self.gaps[self.cursor];
        self.cursor += 1;
        gap
    }

    /// Re-transforms the unconsumed tail after the arrival process
    /// switched (phase boundary): already-drawn uniforms take their
    /// meaning from the process in effect when the gap is *consumed*,
    /// matching the scalar draw-at-send order exactly.
    ///
    /// # Panics
    ///
    /// Panics if the new process draws a different number of uniforms
    /// per gap — arrival kinds are per-node constants, so this would
    /// mean the stream position has already diverged.
    pub fn reconfigure(&mut self, process: &ArrivalProcess) {
        if self.filled == 0 {
            return;
        }
        let stride = process.uniforms_per_gap();
        assert_eq!(
            stride * self.filled,
            self.raw.len(),
            "arrival kind changed across a phase boundary; the gap buffer cannot re-map drawn uniforms"
        );
        for i in self.cursor..self.filled {
            self.gaps[i] = process.gap_from_units(&self.raw[i * stride..(i + 1) * stride]);
        }
    }

    fn refill(&mut self, process: &ArrivalProcess, stride: usize, rng: &mut SimRng) {
        self.raw.resize(GAP_BATCH * stride, 0.0);
        self.gaps.resize(GAP_BATCH, SimDuration::ZERO);
        rng.fill_f64(&mut self.raw);
        for (i, gap) in self.gaps.iter_mut().enumerate() {
            *gap = process.gap_from_units(&self.raw[i * stride..(i + 1) * stride]);
        }
        self.cursor = 0;
        self.filled = GAP_BATCH;
    }
}

/// Static description of a workload generator deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorSpec {
    /// Client machines running generator workers (mutilate "agents").
    pub agents: u32,
    /// Generator threads per agent.
    pub threads_per_agent: u32,
    /// Total connections to the service.
    pub connections: u32,
    /// Open or closed loop.
    pub loop_mode: LoopMode,
    /// Think time per connection in closed-loop mode.
    pub think_time: SimDuration,
    /// Block-wait or busy-wait inter-arrival implementation.
    pub timing: TimingMode,
    /// Where responses are timestamped.
    pub pom: PointOfMeasurement,
    /// Inter-arrival distribution.
    pub arrival: ArrivalKind,
}

impl GeneratorSpec {
    /// The paper's Memcached generator: an extended mutilate — open-loop,
    /// **time-sensitive block-wait**, in-app measurement, "5 machines, one
    /// for the master process and 4 for the workload-generator clients,
    /// establishing a total of 160 connections".
    pub fn mutilate() -> Self {
        GeneratorSpec {
            agents: 4,
            threads_per_agent: 10,
            connections: 160,
            loop_mode: LoopMode::Open,
            think_time: SimDuration::ZERO,
            timing: TimingMode::BlockWait,
            pom: PointOfMeasurement::InApp,
            arrival: ArrivalKind::Exponential,
        }
    }

    /// The paper's HDSearch generator: the µSuite open-loop client —
    /// **time-insensitive busy-wait**, Poisson arrivals, in-app
    /// measurement.
    pub fn microsuite_client() -> Self {
        GeneratorSpec {
            agents: 1,
            threads_per_agent: 4,
            connections: 32,
            loop_mode: LoopMode::Open,
            think_time: SimDuration::ZERO,
            timing: TimingMode::BusyWait,
            pom: PointOfMeasurement::InApp,
            arrival: ArrivalKind::Exponential,
        }
    }

    /// The paper's Social Network generator: an extended wrk2 — open-loop,
    /// **time-sensitive block-wait**, 20 connections, exponential
    /// distribution, in-app measurement.
    pub fn wrk2() -> Self {
        GeneratorSpec {
            agents: 1,
            threads_per_agent: 4,
            connections: 20,
            loop_mode: LoopMode::Open,
            think_time: SimDuration::ZERO,
            timing: TimingMode::BlockWait,
            pom: PointOfMeasurement::InApp,
            arrival: ArrivalKind::Exponential,
        }
    }

    /// The synthetic workload's client (§IV-B): open-loop, time-sensitive
    /// block-wait, in-app measurement.
    pub fn synthetic_client() -> Self {
        GeneratorSpec { connections: 80, ..GeneratorSpec::mutilate() }
    }

    /// Total generator threads.
    pub fn total_threads(&self) -> u32 {
        (self.agents * self.threads_per_agent).max(1)
    }

    /// Returns a copy with a different timing mode (taxonomy ablations).
    pub fn with_timing(mut self, timing: TimingMode) -> Self {
        self.timing = timing;
        self
    }

    /// Returns a copy with a different point of measurement.
    pub fn with_pom(mut self, pom: PointOfMeasurement) -> Self {
        self.pom = pom;
        self
    }

    /// Returns a copy configured as a closed loop with the given think
    /// time.
    pub fn closed_loop(mut self, think: SimDuration) -> Self {
        self.loop_mode = LoopMode::Closed;
        self.think_time = think;
        self
    }

    /// Returns a copy with a different connection count (clamped to at
    /// least 1). Fleet topologies use this to split one deployment's
    /// connections across several client nodes.
    pub fn with_connections(mut self, connections: u32) -> Self {
        self.connections = connections.max(1);
        self
    }
}

/// Raw send-schedule counters of one generator instance, for aggregating
/// schedule fidelity across a fleet of client nodes (the per-instance
/// ratios [`ClientSide::late_send_fraction`] and
/// [`ClientSide::mean_send_slip`] cannot be averaged directly — they must
/// be recombined from these counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SendStats {
    /// Sends that slipped their schedule beyond the tolerance.
    pub late_sends: u64,
    /// Total sends attempted.
    pub total_sends: u64,
    /// Summed slip between scheduled and actual send times.
    pub total_slip: SimDuration,
}

/// Planned timing of one request send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendPlan {
    /// When the generator took its send timestamp.
    pub stamp: SimTime,
    /// When the request actually hit the wire.
    pub wire: SimTime,
}

/// Timing of one response delivery up the client stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvPlan {
    /// NIC arrival (input, echoed for convenience).
    pub nic: SimTime,
    /// After kernel RX processing.
    pub kernel: SimTime,
    /// When the generator application processed and timestamped the
    /// response.
    pub app: SimTime,
}

impl RecvPlan {
    /// The response timestamp under a given point of measurement.
    pub fn stamp(&self, pom: PointOfMeasurement) -> SimTime {
        match pom {
            PointOfMeasurement::Nic => self.nic,
            PointOfMeasurement::Kernel => self.kernel,
            PointOfMeasurement::InApp => self.app,
        }
    }
}

/// The client side of the testbed: generator threads on client machines.
#[derive(Debug)]
pub struct ClientSide {
    spec: GeneratorSpec,
    threads: Vec<CoreResource>,
    stack: StackCosts,
    late_sends: u64,
    total_sends: u64,
    total_send_slip: SimDuration,
    /// Lemire's fastmod constant for `thread_of`: `ceil(2^64 / threads)`.
    /// Connection→thread mapping runs twice per request (send + receive),
    /// so the exact division-free modulo is worth precomputing.
    thread_mod_magic: u64,
}

impl ClientSide {
    /// Instantiates the generator's threads on `machine` in run
    /// environment `env`.
    pub fn new(spec: GeneratorSpec, machine: &MachineConfig, env: &RunEnvironment) -> Self {
        let n = spec.total_threads() as usize;
        let threads = (0..n)
            .map(|_| match spec.timing {
                // Block-wait threads sleep between events; busy-wait
                // arrival loops keep their own core hot, and responses are
                // handled by blocking RPC completion threads.
                TimingMode::BlockWait => CoreResource::new(machine, env),
                TimingMode::BusyWait => CoreResource::new(machine, env),
            })
            .collect();
        ClientSide {
            spec,
            threads,
            stack: StackCosts::tcp_small_rpc(),
            late_sends: 0,
            total_sends: 0,
            total_send_slip: SimDuration::ZERO,
            // ceil(2^64 / n) for n >= 2; unused for n == 1 (mod is 0).
            thread_mod_magic: if n > 1 { (u64::MAX / n as u64).wrapping_add(1) } else { 0 },
        }
    }

    /// The generator spec.
    pub fn spec(&self) -> &GeneratorSpec {
        &self.spec
    }

    /// Swaps the client machine's configuration and run environment under
    /// every generator thread mid-run — a [`tpv_hw::DynamicMachine`]
    /// phase boundary. The generator software and all its counters
    /// (sends, slips, wakes, energy) carry across: the machine changed
    /// state, the workload generator did not restart.
    pub fn reconfigure(&mut self, machine: &MachineConfig, env: &tpv_hw::RunEnvironment) {
        for thread in &mut self.threads {
            thread.reconfigure(machine, env);
        }
    }

    /// The thread a connection is owned by.
    pub fn thread_of(&self, conn: usize) -> usize {
        let n = self.threads.len() as u64;
        if n == 1 {
            return 0;
        }
        // Lemire's fastmod (exact for dividends < 2^32; connection ids
        // are node-local u32s): lowbits = conn * ceil(2^64/n), then
        // mod = high64(lowbits * n). Identical to `conn % n`.
        debug_assert!(conn <= u32::MAX as usize);
        let lowbits = (conn as u64).wrapping_mul(self.thread_mod_magic);
        ((lowbits as u128 * n as u128) >> 64) as usize
    }

    /// Plans the send due at `due` on `conn`.
    ///
    /// Block-wait: the owning thread must be scheduled (waking if asleep)
    /// before the request is stamped and written — late wakes slip the
    /// wire time, disrupting the inter-arrival schedule.
    /// Busy-wait: the arrival loop is already spinning; the send leaves
    /// (almost) exactly on time.
    pub fn plan_send(&mut self, conn: usize, due: SimTime, rng: &mut SimRng) -> SendPlan {
        self.total_sends += 1;
        match self.spec.timing {
            TimingMode::BlockWait => {
                let t = self.thread_of(conn);
                let grant = self.threads[t].acquire(due, self.stack.client_send, rng);
                let slip = grant.end.since(due);
                // "Late" means the wire time slipped past the schedule by
                // more than the unavoidable send-processing cost plus a
                // small scheduling allowance.
                if slip > self.stack.client_send + SimDuration::from_us(5) {
                    self.late_sends += 1;
                }
                self.total_send_slip += slip;
                SendPlan { stamp: grant.end, wire: grant.end }
            }
            TimingMode::BusyWait => {
                let wire = due + self.stack.client_send;
                self.total_send_slip += self.stack.client_send;
                SendPlan { stamp: due, wire }
            }
        }
    }

    /// Delivers a response whose NIC arrival is `nic` up the client stack.
    ///
    /// Regardless of the arrival-loop implementation, the *receive* path
    /// runs in a thread that blocks on the socket — on an LP machine it
    /// pays the wake path before the in-app timestamp (§II's c-states
    /// example).
    pub fn receive(&mut self, conn: usize, nic: SimTime, rng: &mut SimRng) -> RecvPlan {
        let kernel = nic + self.stack.kernel_rx;
        let t = self.thread_of(conn);
        let grant = self.threads[t].acquire(kernel, self.stack.client_recv, rng);
        RecvPlan { nic, kernel, app: grant.end }
    }

    /// Fraction of sends that slipped their schedule by more than the
    /// send-processing cost (a workload-fidelity diagnostic, in the spirit
    /// of Lancet's self-checks).
    pub fn late_send_fraction(&self) -> f64 {
        if self.total_sends == 0 {
            0.0
        } else {
            self.late_sends as f64 / self.total_sends as f64
        }
    }

    /// Mean slip between scheduled and actual send.
    pub fn mean_send_slip(&self) -> SimDuration {
        if self.total_sends == 0 {
            SimDuration::ZERO
        } else {
            self.total_send_slip / self.total_sends
        }
    }

    /// The raw counters behind the schedule-fidelity ratios, for
    /// recombination across a fleet of generator instances.
    pub fn send_stats(&self) -> SendStats {
        SendStats {
            late_sends: self.late_sends,
            total_sends: self.total_sends,
            total_slip: self.total_send_slip,
        }
    }

    /// Estimated client-machine energy up to `now` across generator
    /// threads, in core-seconds of C0-equivalent power.
    ///
    /// The HP configuration's `idle=poll` keeps every thread's core at
    /// full power while idle — the accuracy/energy trade-off the paper's
    /// §VI recommendations implicitly price.
    pub fn energy_core_secs(&self, now: SimTime) -> f64 {
        self.threads.iter().map(|t| t.energy_core_secs(now)).sum()
    }

    /// Total wake-ups taken from each C-state across generator threads.
    pub fn wakes_by_state(&self) -> [u64; 4] {
        let mut acc = [0u64; 4];
        for t in &self.threads {
            let ws = t.wakes_by_state();
            for i in 0..4 {
                acc[i] += ws[i];
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp_client(spec: GeneratorSpec, seed: u64) -> (ClientSide, SimRng) {
        let mut rng = SimRng::seed_from_u64(seed);
        let lp = MachineConfig::low_power();
        let env = lp.draw_environment(&mut rng);
        (ClientSide::new(spec, &lp, &env), rng)
    }

    fn hp_client(spec: GeneratorSpec, seed: u64) -> (ClientSide, SimRng) {
        let mut rng = SimRng::seed_from_u64(seed);
        let hp = MachineConfig::high_performance();
        let env = hp.draw_environment(&mut rng);
        (ClientSide::new(spec, &hp, &env), rng)
    }

    #[test]
    fn presets_match_the_paper() {
        let m = GeneratorSpec::mutilate();
        assert_eq!(m.connections, 160);
        assert_eq!(m.agents, 4);
        assert_eq!(m.timing, TimingMode::BlockWait);
        assert_eq!(m.pom, PointOfMeasurement::InApp);
        assert_eq!(m.loop_mode, LoopMode::Open);

        let u = GeneratorSpec::microsuite_client();
        assert_eq!(u.timing, TimingMode::BusyWait);

        let w = GeneratorSpec::wrk2();
        assert_eq!(w.connections, 20);
        assert_eq!(w.timing, TimingMode::BlockWait);
    }

    #[test]
    fn block_wait_sends_slip_on_lp() {
        let (mut client, mut rng) = lp_client(GeneratorSpec::mutilate(), 1);
        let plan = client.plan_send(0, SimTime::from_ms(10), &mut rng);
        // Waking from C6 costs >100 µs before the send leaves.
        assert!(plan.wire >= SimTime::from_ms(10) + SimDuration::from_us(50), "wire {}", plan.wire);
        assert!(client.mean_send_slip() > SimDuration::from_us(50));
    }

    #[test]
    fn block_wait_sends_barely_slip_on_hp() {
        let (mut client, mut rng) = hp_client(GeneratorSpec::mutilate(), 2);
        let plan = client.plan_send(0, SimTime::from_ms(10), &mut rng);
        assert!(plan.wire <= SimTime::from_ms(10) + SimDuration::from_us(10), "wire {}", plan.wire);
        assert_eq!(client.late_send_fraction(), 0.0);
    }

    #[test]
    fn busy_wait_sends_are_exact_even_on_lp() {
        // The µSuite client's arrival loop spins: the workload is not
        // disrupted even on an untuned machine (Table III: "no risk").
        let (mut client, mut rng) = lp_client(GeneratorSpec::microsuite_client(), 3);
        let plan = client.plan_send(0, SimTime::from_ms(10), &mut rng);
        assert_eq!(plan.stamp, SimTime::from_ms(10));
        assert!(plan.wire <= SimTime::from_ms(10) + SimDuration::from_us(3));
    }

    #[test]
    fn receive_path_pays_wake_on_lp_even_for_busy_wait() {
        // The in-app receive timestamp is inflated on LP for both timing
        // modes — the mechanism behind HDSearch's residual LP/HP gap.
        let (mut lp, mut r1) = lp_client(GeneratorSpec::microsuite_client(), 4);
        let (mut hp, mut r2) = hp_client(GeneratorSpec::microsuite_client(), 4);
        let nic = SimTime::from_ms(20);
        let lp_plan = lp.receive(0, nic, &mut r1);
        let hp_plan = hp.receive(0, nic, &mut r2);
        assert!(lp_plan.app > hp_plan.app, "LP app stamp {} !> HP {}", lp_plan.app, hp_plan.app);
        // Point-of-measurement ordering holds everywhere.
        for plan in [lp_plan, hp_plan] {
            assert!(plan.stamp(PointOfMeasurement::Nic) <= plan.stamp(PointOfMeasurement::Kernel));
            assert!(plan.stamp(PointOfMeasurement::Kernel) <= plan.stamp(PointOfMeasurement::InApp));
        }
    }

    #[test]
    fn burst_of_due_sends_serializes_on_one_thread() {
        let (mut client, mut rng) = lp_client(GeneratorSpec::mutilate(), 5);
        // Three sends due at the same instant on connections owned by the
        // same thread (conn, conn+threads, conn+2*threads).
        let threads = client.spec().total_threads() as usize;
        let due = SimTime::from_ms(50);
        let w1 = client.plan_send(0, due, &mut rng).wire;
        let w2 = client.plan_send(threads, due, &mut rng).wire;
        let w3 = client.plan_send(2 * threads, due, &mut rng).wire;
        assert!(w1 < w2 && w2 < w3, "sends did not serialize: {w1} {w2} {w3}");
    }

    #[test]
    fn different_threads_do_not_serialize() {
        let (mut client, mut rng) = hp_client(GeneratorSpec::mutilate(), 6);
        let due = SimTime::from_ms(50);
        let w1 = client.plan_send(0, due, &mut rng).wire;
        let w2 = client.plan_send(1, due, &mut rng).wire;
        // Consecutive connections live on different threads.
        assert!(client.thread_of(0) != client.thread_of(1));
        assert!((w1.as_ns() as i64 - w2.as_ns() as i64).abs() < 10_000);
    }

    #[test]
    fn arrival_processes_have_right_mean() {
        let mut rng = SimRng::seed_from_u64(7);
        for kind in [ArrivalKind::Exponential, ArrivalKind::Deterministic, ArrivalKind::LogNormal(0.5)] {
            let p = ArrivalProcess::new(kind, SimDuration::from_us(100));
            let n = 50_000;
            let total: f64 = (0..n).map(|_| p.next_gap(&mut rng).as_us()).sum();
            let mean = total / n as f64;
            assert!((mean - 100.0).abs() < 3.0, "{kind:?}: mean {mean}");
            assert_eq!(p.mean_gap(), SimDuration::from_us(100));
        }
    }

    #[test]
    fn gap_buffer_is_bit_identical_to_scalar_draws() {
        // Pre-drawing batches on the same stream must reproduce the
        // scalar draw-per-send sequence exactly — the tentpole invariant
        // of the batch layer.
        for kind in [ArrivalKind::Exponential, ArrivalKind::LogNormal(0.4), ArrivalKind::Deterministic] {
            let p = ArrivalProcess::new(kind, SimDuration::from_us(120));
            let mut scalar_rng = SimRng::seed_from_u64(99);
            let mut buf_rng = SimRng::seed_from_u64(99);
            let mut buf = GapBuffer::new();
            for i in 0..500 {
                let want = p.next_gap(&mut scalar_rng);
                let got = buf.next_gap(&p, &mut buf_rng);
                assert_eq!(got, want, "{kind:?}: gap {i} diverged");
            }
        }
    }

    #[test]
    fn gap_buffer_retransforms_across_a_rate_switch() {
        // A phase boundary swaps the process mid-buffer; the unconsumed
        // tail must come out as if each gap had been drawn scalar-wise
        // under the process in effect at consumption time.
        let p1 = ArrivalProcess::new(ArrivalKind::Exponential, SimDuration::from_us(100));
        let p2 = ArrivalProcess::new(ArrivalKind::Exponential, SimDuration::from_us(25));
        // Switch mid-batch (10 < GAP_BATCH) and at a batch boundary.
        for (switch_at, total) in [(10usize, 100usize), (64, 200)] {
            let mut scalar_rng = SimRng::seed_from_u64(7 + switch_at as u64);
            let mut buf_rng = SimRng::seed_from_u64(7 + switch_at as u64);
            let mut buf = GapBuffer::new();
            for i in 0..total {
                let (scalar_p, buf_p) = if i < switch_at { (&p1, &p1) } else { (&p2, &p2) };
                if i == switch_at {
                    buf.reconfigure(buf_p);
                }
                let want = scalar_p.next_gap(&mut scalar_rng);
                let got = buf.next_gap(buf_p, &mut buf_rng);
                assert_eq!(got, want, "switch@{switch_at}: gap {i} diverged");
            }
        }
    }

    #[test]
    fn superposed_arrivals_pool_the_rate() {
        // A pool of 50 members at 100 µs mean gap is one process at 2 µs.
        let pooled = ArrivalProcess::superposed(ArrivalKind::Exponential, SimDuration::from_us(100), 50);
        assert_eq!(pooled.mean_gap(), SimDuration::from_us(2));
        let mut rng = SimRng::seed_from_u64(13);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| pooled.next_gap(&mut rng).as_us()).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "pooled mean {mean}");
        // One member is the identity — what makes a population-1 cohort
        // bit-identical to an explicit node.
        let solo = ArrivalProcess::superposed(ArrivalKind::Exponential, SimDuration::from_us(100), 1);
        assert_eq!(solo.mean_gap(), SimDuration::from_us(100));
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn superposed_rejects_an_empty_pool() {
        ArrivalProcess::superposed(ArrivalKind::Exponential, SimDuration::from_us(10), 0);
    }

    #[test]
    fn spec_builders() {
        let s = GeneratorSpec::mutilate()
            .with_timing(TimingMode::BusyWait)
            .with_pom(PointOfMeasurement::Nic)
            .closed_loop(SimDuration::from_us(50));
        assert_eq!(s.timing, TimingMode::BusyWait);
        assert_eq!(s.pom, PointOfMeasurement::Nic);
        assert_eq!(s.loop_mode, LoopMode::Closed);
        assert_eq!(s.think_time, SimDuration::from_us(50));
        assert_eq!(GeneratorSpec::synthetic_client().connections, 80);
        assert_eq!(GeneratorSpec::mutilate().with_connections(40).connections, 40);
        // Degenerate splits clamp to one connection.
        assert_eq!(GeneratorSpec::mutilate().with_connections(0).connections, 1);
    }

    #[test]
    fn send_stats_expose_the_raw_counters() {
        let (mut client, mut rng) = lp_client(GeneratorSpec::mutilate(), 9);
        for i in 1..=10u64 {
            client.plan_send(0, SimTime::from_ms(5 * i), &mut rng);
        }
        let s = client.send_stats();
        assert_eq!(s.total_sends, 10);
        assert!(s.late_sends <= s.total_sends);
        // The ratios recombine exactly from the raw counters.
        assert_eq!(client.late_send_fraction(), s.late_sends as f64 / s.total_sends as f64);
        assert_eq!(client.mean_send_slip(), s.total_slip / s.total_sends);
    }

    #[test]
    fn wake_statistics_visible() {
        let (mut client, mut rng) = lp_client(GeneratorSpec::mutilate(), 8);
        for i in 1..=20u64 {
            client.plan_send(0, SimTime::from_ms(5 * i), &mut rng);
        }
        let wakes: u64 = client.wakes_by_state().iter().sum();
        assert!(wakes >= 19, "wakes {wakes}");
    }

    #[test]
    fn hp_client_burns_more_energy_while_idle() {
        let (mut lp, mut r1) = lp_client(GeneratorSpec::mutilate(), 21);
        let (mut hp, mut r2) = hp_client(GeneratorSpec::mutilate(), 21);
        // Sparse activity: both clients mostly idle.
        for i in 1..=20u64 {
            lp.plan_send(0, SimTime::from_ms(10 * i), &mut r1);
            hp.plan_send(0, SimTime::from_ms(10 * i), &mut r2);
        }
        let horizon = SimTime::from_ms(210);
        let e_lp = lp.energy_core_secs(horizon);
        let e_hp = hp.energy_core_secs(horizon);
        assert!(e_hp > 1.5 * e_lp, "HP (poll) {e_hp} !>> LP {e_lp}");
    }

    #[test]
    fn reconfigure_to_lp_slips_subsequent_sends() {
        let (mut client, mut rng) = hp_client(GeneratorSpec::mutilate(), 11);
        for i in 1..=5u64 {
            client.plan_send(0, SimTime::from_ms(10 * i), &mut rng);
        }
        let hp_slip = client.mean_send_slip();
        assert!(hp_slip < SimDuration::from_us(10));
        let before = client.send_stats();

        // Mid-run the machine falls back to deep idle states.
        let lp = MachineConfig::low_power();
        let env = lp.draw_environment(&mut rng);
        client.reconfigure(&lp, &env);
        assert_eq!(client.send_stats(), before, "counters survive reconfiguration");
        let plan = client.plan_send(0, SimTime::from_ms(100), &mut rng);
        assert!(
            plan.wire >= SimTime::from_ms(100) + SimDuration::from_us(50),
            "post-switch send must pay the deep wake path, wire {}",
            plan.wire
        );
    }

    #[test]
    #[should_panic(expected = "positive mean gap")]
    fn zero_gap_rejected() {
        ArrivalProcess::new(ArrivalKind::Exponential, SimDuration::ZERO);
    }
}
