//! Piecewise (phase-scheduled) offered-load rates.
//!
//! Real traffic is not stationary: production load is diurnal, canary
//! traffic steps, interference bursts. A [`PhasedRate`] expresses a
//! node's offered load as a base QPS times one multiplier per phase of a
//! [`PhaseSchedule`]. The topology kernel rebuilds the node's arrival
//! process at every boundary, and each phase's arrival gaps are drawn
//! from the node's single content-addressed arrival stream — the rate
//! changes, the determinism and permutation-invariance contracts do not.

use serde::{Deserialize, Serialize};
use tpv_sim::{PhaseSchedule, SimDuration, SimTime};

/// A per-phase multiplier over a node's base offered load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasedRate {
    schedule: PhaseSchedule,
    multipliers: Vec<f64>,
}

impl PhasedRate {
    /// The constant rate — multiplier `1.0` over a single all-covering
    /// phase. Exactly the static load of the pre-phase testbed.
    pub fn constant() -> Self {
        PhasedRate { schedule: PhaseSchedule::single(), multipliers: vec![1.0] }
    }

    /// Rate `base_qps * multipliers[i]` during phase `i` of `schedule`.
    ///
    /// # Panics
    ///
    /// Panics unless `multipliers.len() == schedule.phase_count()` and
    /// every multiplier is finite and positive.
    pub fn new(schedule: PhaseSchedule, multipliers: Vec<f64>) -> Self {
        assert_eq!(multipliers.len(), schedule.phase_count(), "phased rate needs one multiplier per phase");
        for &m in &multipliers {
            assert!(m.is_finite() && m > 0.0, "rate multipliers must be positive, got {m}");
        }
        PhasedRate { schedule, multipliers }
    }

    /// Like [`PhasedRate::new`] but without the finite-and-positive
    /// multiplier check — the shape a plan deserialized from external
    /// config arrives in, where nothing has audited the numbers yet.
    /// [`TopologySpec::validate`] backstops this seam with
    /// `TopologyError::NonFinitePhaseRate`, so callers building specs
    /// from untrusted data should run plans through a spec rather than
    /// trusting them directly.
    ///
    /// [`TopologySpec::validate`]: https://docs.rs/tpv-core
    ///
    /// # Panics
    ///
    /// Panics unless `multipliers.len() == schedule.phase_count()`; the
    /// phase↔multiplier pairing is structural, not a data question.
    pub fn unchecked(schedule: PhaseSchedule, multipliers: Vec<f64>) -> Self {
        assert_eq!(multipliers.len(), schedule.phase_count(), "phased rate needs one multiplier per phase");
        PhasedRate { schedule, multipliers }
    }

    /// A stepped approximation of one diurnal cycle over `period`:
    /// `steps` equal phases whose multipliers follow
    /// `1 + amplitude * sin(2π · midpoint)`, so the run sweeps through a
    /// trough (`1 - amplitude`) and a peak (`1 + amplitude`) and the
    /// *time-average* load stays the base rate.
    ///
    /// # Panics
    ///
    /// Panics unless `steps ≥ 2`, `period` is non-zero and
    /// `amplitude ∈ [0, 1)` (a multiplier must stay positive).
    pub fn diurnal(period: SimDuration, steps: usize, amplitude: f64) -> Self {
        assert!(steps >= 2, "a diurnal cycle needs at least 2 steps");
        assert!((0.0..1.0).contains(&amplitude), "amplitude must be in [0,1), got {amplitude}");
        let step = SimDuration::from_ns(period.as_ns() / steps as u64);
        assert!(!step.is_zero(), "diurnal period too short for {steps} steps");
        let mult = (0..steps)
            .map(|k| {
                let angle = std::f64::consts::TAU * (k as f64 + 0.5) / steps as f64;
                1.0 + amplitude * tpv_math::fast_sincos(angle).0
            })
            .collect();
        PhasedRate::new(PhaseSchedule::stepped(step, steps), mult)
    }

    /// The phase schedule this rate follows.
    pub fn schedule(&self) -> &PhaseSchedule {
        &self.schedule
    }

    /// The multiplier in effect during `phase`.
    ///
    /// # Panics
    ///
    /// Panics if `phase` is out of range.
    pub fn multiplier(&self, phase: usize) -> f64 {
        self.multipliers[phase]
    }

    /// The multiplier in effect at instant `t`.
    pub fn multiplier_at(&self, t: SimTime) -> f64 {
        self.multipliers[self.schedule.phase_at(t)]
    }

    /// The rate restricted to the window `[start, end)`, re-anchored so
    /// `start` becomes the new `t = 0` (see `PhaseSchedule::slice`).
    /// Multipliers are *copied*, never recomputed, so a sliced diurnal
    /// plan reproduces the original phases' rates bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics unless `start < end`.
    pub fn slice(&self, start: SimTime, end: SimTime) -> PhasedRate {
        let schedule = self.schedule.slice(start, end);
        let multipliers = (0..schedule.phase_count())
            .map(|p| self.multiplier_at(start + schedule.phase_start(p).since(SimTime::ZERO)))
            .collect();
        PhasedRate { schedule, multipliers }
    }

    /// Time-weighted mean multiplier over the window `[start, end)` —
    /// what a run's *effective* offered load is relative to the base
    /// rate. Exactly `multiplier(0)` for a single-phase rate.
    ///
    /// # Panics
    ///
    /// Panics unless `start < end`.
    pub fn mean_multiplier(&self, start: SimTime, end: SimTime) -> f64 {
        if self.schedule.is_single() {
            return self.multipliers[0];
        }
        self.schedule.overlap_weights(start, end).iter().zip(&self.multipliers).map(|(w, m)| w * m).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_is_exactly_one() {
        let r = PhasedRate::constant();
        assert_eq!(r.multiplier_at(SimTime::from_secs(5)), 1.0);
        assert_eq!(r.mean_multiplier(SimTime::ZERO, SimTime::from_secs(1)), 1.0);
        assert!(r.schedule().is_single());
    }

    #[test]
    fn stepped_rate_resolves_per_phase() {
        let r = PhasedRate::new(PhaseSchedule::stepped(SimDuration::from_ms(10), 3), vec![0.5, 2.0, 1.0]);
        assert_eq!(r.multiplier_at(SimTime::from_ms(5)), 0.5);
        assert_eq!(r.multiplier_at(SimTime::from_ms(10)), 2.0);
        assert_eq!(r.multiplier_at(SimTime::from_ms(25)), 1.0);
        assert_eq!(r.multiplier(1), 2.0);
        // [0,20ms) covers phases 0 and 1 equally.
        let mean = r.mean_multiplier(SimTime::ZERO, SimTime::from_ms(20));
        assert!((mean - 1.25).abs() < 1e-12, "{mean}");
    }

    #[test]
    fn diurnal_sweeps_trough_and_peak_with_unit_mean() {
        let r = PhasedRate::diurnal(SimDuration::from_secs(1), 8, 0.6);
        assert_eq!(r.schedule().phase_count(), 8);
        let mults: Vec<f64> = (0..8).map(|p| r.multiplier(p)).collect();
        let max = mults.iter().cloned().fold(f64::MIN, f64::max);
        let min = mults.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 1.5 && max <= 1.6, "peak {max}");
        assert!((0.4..0.5).contains(&min), "trough {min}");
        // Midpoint sampling of a full sine cycle averages to 1.
        let mean = r.mean_multiplier(SimTime::ZERO, SimTime::from_secs(1));
        assert!((mean - 1.0).abs() < 1e-9, "mean {mean}");
    }

    #[test]
    fn slice_copies_the_covering_phases_multipliers() {
        let r =
            PhasedRate::new(PhaseSchedule::stepped(SimDuration::from_ms(10), 4), vec![0.5, 2.0, 1.0, 3.0]);
        // Window [10ms, 30ms) covers phases 1 and 2.
        let w = r.slice(SimTime::from_ms(10), SimTime::from_ms(30));
        assert_eq!(w.schedule().phase_count(), 2);
        assert_eq!(w.multiplier(0), 2.0);
        assert_eq!(w.multiplier(1), 1.0);
        assert_eq!(w.multiplier_at(SimTime::from_ms(9)), 2.0);
        assert_eq!(w.multiplier_at(SimTime::from_ms(10)), 1.0);
        // A window inside one phase is a constant rate at that phase's value.
        let w = r.slice(SimTime::from_ms(31), SimTime::from_ms(39));
        assert!(w.schedule().is_single());
        assert_eq!(w.multiplier(0), 3.0);
    }

    #[test]
    #[should_panic(expected = "one multiplier per phase")]
    fn mismatched_lengths_rejected() {
        PhasedRate::new(PhaseSchedule::stepped(SimDuration::from_ms(5), 3), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn non_positive_multiplier_rejected() {
        PhasedRate::new(PhaseSchedule::single(), vec![0.0]);
    }
}
