//! Offline shim for `criterion`: a minimal wall-clock benchmark harness
//! exposing the subset of criterion's API the workspace benches use.
//!
//! The build environment has no access to crates.io, so this shim keeps
//! `cargo bench` working: every benchmark closure really executes and a
//! mean wall-clock time per iteration is printed. There is no statistical
//! analysis, outlier detection or HTML report — swap the
//! `support/criterion` path dependency for the real crate to get those.
//!
//! Invoked with `--test` (as `cargo test` does for `harness = false`
//! bench targets), it runs each benchmark for a single iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Maximum measurement time per benchmark (after one warm-up call).
const TARGET_TIME: Duration = Duration::from_millis(200);
/// Measurement iteration cap.
const MAX_ITERS: u64 = 50;

/// Top-level benchmark driver (shim for `criterion::Criterion`).
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: if self.test_mode { 1 } else { MAX_ITERS },
            elapsed: Duration::ZERO,
            executed: 0,
        };
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named group of related benchmarks (shim for criterion's group).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim ignores the hint.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let test_mode = self.criterion.test_mode;
        let mut b =
            Bencher { iters: if test_mode { 1 } else { MAX_ITERS }, elapsed: Duration::ZERO, executed: 0 };
        f(&mut b, input);
        report(&full, &b);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Identifier of a parameterised benchmark (shim for `criterion::BenchmarkId`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from the parameter's display form.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(p.to_string())
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    executed: u64,
}

impl Bencher {
    /// Times `routine`, running it repeatedly up to the shim's iteration
    /// and wall-clock caps.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up run, not timed.
        let _ = black_box(routine());
        let start = Instant::now();
        let mut n = 0u64;
        while n < self.iters {
            let _ = black_box(routine());
            n += 1;
            if start.elapsed() > TARGET_TIME {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.executed = n;
    }
}

/// Identity function that defeats constant-folding of benchmark results.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn report(name: &str, b: &Bencher) {
    if b.executed == 0 {
        println!("{name:<50} (closure never called b.iter)");
        return;
    }
    let per = b.elapsed.as_nanos() as f64 / b.executed as f64;
    println!("{name:<50} {:>12.0} ns/iter ({} iters)", per, b.executed);
}

/// Shim for `criterion::criterion_group!`: bundles benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Shim for `criterion::criterion_main!`: entry point running the groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
