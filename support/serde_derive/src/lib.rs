//! Offline shim for `serde_derive`: the derive macros expand to nothing.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a
//! forward-compatibility marker on config types — nothing serializes at
//! runtime — so empty expansions keep the annotations compiling in an
//! environment with no access to crates.io. Swap the `support/serde*`
//! path dependencies for the real crates to get working serialization.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
