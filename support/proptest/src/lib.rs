//! Offline shim for `proptest`: a deterministic property-testing harness
//! exposing the subset of proptest's API the workspace tests use.
//!
//! The build environment has no access to crates.io, so this shim keeps
//! the `proptest!` tests running for real: each test draws its inputs
//! from a strategy and executes the body for the configured number of
//! cases. Inputs are generated from a seed derived from the test name, so
//! failures reproduce exactly. There is no shrinking and no persisted
//! failure file — swap the `support/proptest` path dependency for the
//! real crate to get those.

/// Per-test configuration (shim for `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The shim's input generator: splitmix64, seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator whose stream is a pure function of `name`.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and toolchains.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift; bias is irrelevant for test-input generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator (shim for `proptest::strategy::Strategy`).
///
/// Unlike the real trait this one generates values directly — there is no
/// value tree and no shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )+};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

/// The `prop` namespace (shim for `proptest::prelude::prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Strategy producing `Vec`s of `element` values with a length
        /// drawn from `len`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// See [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything the `proptest!` tests import.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy};
}

/// Shim for `proptest::prop_assert!`: panics (no error propagation).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Shim for `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Shim for `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Shim for the `proptest!` macro: expands each property into a `#[test]`
/// that draws inputs from the strategies and runs the body per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                // The name-derived seed makes any failing case reproducible.
                for _case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}
