//! Offline shim for `serde`: trait markers plus no-op derive macros.
//!
//! The build environment has no access to crates.io, and the workspace
//! only uses `#[derive(Serialize, Deserialize)]` as annotations on config
//! types (nothing calls a serializer). This facade keeps those
//! annotations compiling; replace the `support/serde*` path dependencies
//! with the real crates when a registry is available.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (never implemented by the
/// no-op derive; present so trait-position imports resolve).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (never implemented by the
/// no-op derive; present so trait-position imports resolve).
pub trait Deserialize<'de>: Sized {}
